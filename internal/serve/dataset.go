// Package serve is the reproducible SQL serving layer: a long-lived
// query server over shared resident data. Clients submit GROUP BY and
// window aggregate queries drawn from the sqlagg spec catalog; the
// server plans them onto the local partitioned engine or the
// distributed tuple plane and returns canonical result encodings.
//
// Reproducibility is what makes a serving layer out of these parts.
// Because every aggregate is bit-reproducible — the same multiset of
// rows yields the same bits for every execution order, worker count,
// partitioning, and backend — a query's canonical result encoding is a
// pure function of (query, data version). That purity buys three
// things the server leans on:
//
//   - a result cache that is *correct by construction*: a hit returns
//     exactly the bytes a recomputation would produce, so caching can
//     never be observed (except as latency);
//   - backend transparency: the local engine and the distributed
//     cluster answer with identical bytes, so placement is a pure
//     scheduling decision;
//   - memory admission that can reason before running: the partitioned
//     layout bounds the distinct-key count of any GROUP BY up front
//     (partition.Output.DistinctBound), and the spec catalog prices
//     each group's state tuple (sqlagg.TupleSize), so a query's working
//     memory is estimated — and over-budget queries rejected with a
//     typed error — before the first row is touched.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"

	"repro/internal/partition"
	"repro/internal/sqlagg"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Typed errors of the serving layer, matchable with errors.Is on the
// (possibly wrapped) errors Server.Do returns.
var (
	// ErrBadQuery: the query references an unknown kind, an unregistered
	// aggregate, an out-of-range column, or an invalid level count.
	ErrBadQuery = errors.New("serve: invalid query")
	// ErrOverBudget: the query's estimated working memory exceeds the
	// server's per-query budget. Reported before execution starts.
	ErrOverBudget = errors.New("serve: estimated query memory exceeds the per-query budget")
	// ErrOverloaded: all execution slots are busy and the wait queue is
	// full. The query was never enqueued.
	ErrOverloaded = errors.New("serve: server overloaded, wait queue full")
	// ErrQueueTimeout: the query waited in the admission queue for the
	// full queue timeout without an execution slot freeing up.
	ErrQueueTimeout = errors.New("serve: timed out waiting for an execution slot")
	// ErrServerClosed: the server has been closed.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrDataset: the dataset's shape is invalid (mismatched column
	// lengths, no rows, no columns, bad options).
	ErrDataset = errors.New("serve: invalid dataset")
)

// DatasetOptions configures resident-data loading.
type DatasetOptions struct {
	// Fanout is the partition fan-out of the local engine's layout
	// (power of two; default 256). Keys are routed on the low key byte,
	// so within one partition distinct keys differ by at least Fanout —
	// the stride DistinctBound exploits.
	Fanout int
	// Shards is the cluster size the data is pre-sharded for, serving
	// the distributed backend (default 4).
	Shards int
	// Workers parallelizes the load-time partitioning pass (default
	// GOMAXPROCS). The physical row order inside a partition depends on
	// it, but query results do not: the aggregates are order-independent.
	Workers int
}

func (o DatasetOptions) withDefaults() DatasetOptions {
	if o.Fanout == 0 {
		o.Fanout = 256
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Dataset is an immutable resident table: uint32 group keys plus
// float64 value columns, held in three layouts at once — original row
// order (window queries), radix-partitioned (the local GROUP BY
// engine), and round-robin sharded (the distributed backend). All
// layouts hold the same multiset of rows, so every backend answers
// with the same bits. A Dataset is safe for concurrent use after
// construction; it is never mutated.
type Dataset struct {
	keys []uint32
	cols [][]float64

	// Local-engine layout: keys partitioned on the low key byte; pcols
	// holds each value column permuted into the same partitioned order.
	part   partition.Output[int32]
	pcols  [][]float64
	fanout int

	// distinctBound is Σ_p DistinctBound(p, fanout): a precomputed upper
	// bound on the number of groups any GROUP BY over this data can
	// produce. Memory admission prices queries with it.
	distinctBound int

	// Distributed-backend layout.
	shardKeys [][]uint32
	shardCols [][][]float64

	// version is an FNV-64a digest of the resident rows. It keys the
	// result cache: results are a pure function of (query, version).
	version uint64
}

// NewDataset loads keys and value columns as resident serving data.
// All columns must have exactly len(keys) rows; at least one row and
// one column are required. The input slices are retained (not copied)
// in row order and must not be mutated afterwards.
func NewDataset(keys []uint32, cols [][]float64, opts DatasetOptions) (*Dataset, error) {
	o := opts.withDefaults()
	if len(keys) == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrDataset)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no value columns", ErrDataset)
	}
	for c := range cols {
		if len(cols[c]) != len(keys) {
			return nil, fmt.Errorf("%w: column %d has %d rows, keys have %d",
				ErrDataset, c, len(cols[c]), len(keys))
		}
	}
	if o.Fanout <= 0 || o.Fanout&(o.Fanout-1) != 0 || o.Fanout > 65536 {
		return nil, fmt.Errorf("%w: fanout %d is not a power of two in [1, 65536]", ErrDataset, o.Fanout)
	}
	if o.Shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrDataset, o.Shards)
	}

	d := &Dataset{keys: keys, cols: cols, fanout: o.Fanout}

	// Local layout: partition row indexes alongside the keys, then
	// gather every value column into partitioned order once, at load
	// time — queries only ever stream sequentially after this.
	idx := make([]int32, len(keys))
	for i := range idx {
		idx[i] = int32(i)
	}
	d.part = partition.Do(keys, idx, 0, o.Fanout, o.Workers)
	d.pcols = make([][]float64, len(cols))
	for c := range cols {
		pc := make([]float64, len(keys))
		for j, ri := range d.part.Vals {
			pc[j] = cols[c][ri]
		}
		d.pcols[c] = pc
	}
	for p := 0; p < d.part.NumPartitions(); p++ {
		d.distinctBound += d.part.DistinctBound(p, uint32(o.Fanout))
	}

	// Distributed layout: round-robin deal, the same sharding the
	// equivalence tests and benchmarks use elsewhere in the repo.
	d.shardKeys = make([][]uint32, o.Shards)
	d.shardCols = make([][][]float64, o.Shards)
	for s := range d.shardCols {
		d.shardCols[s] = make([][]float64, len(cols))
	}
	for i, k := range keys {
		s := i % o.Shards
		d.shardKeys[s] = append(d.shardKeys[s], k)
		for c := range cols {
			d.shardCols[s][c] = append(d.shardCols[s][c], cols[c][i])
		}
	}

	d.version = digestRows(keys, cols)
	return d, nil
}

// SyntheticDataset loads a workload-generated dataset: n rows with
// keys uniform over [0, ngroups) and ncols value columns drawn from
// dist, all derived deterministically from seed.
func SyntheticDataset(seed uint64, n int, ngroups uint32, ncols int, dist workload.ValueDist, opts DatasetOptions) (*Dataset, error) {
	if n <= 0 || ncols <= 0 || ngroups == 0 {
		return nil, fmt.Errorf("%w: n=%d ncols=%d ngroups=%d", ErrDataset, n, ncols, ngroups)
	}
	keys := workload.Keys(seed, n, ngroups)
	cols := make([][]float64, ncols)
	for c := range cols {
		cols[c] = workload.Values64(seed+1+uint64(c), n, dist)
	}
	return NewDataset(keys, cols, opts)
}

// Q1Dataset loads TPC-H lineitem at the given scale factor and
// evaluates Q1's scan side (shipdate filter, projections, group ids)
// into resident serving data with the Q1 column layout — Q1Specs
// queries against it reproduce the eight Q1 aggregates.
func Q1Dataset(sf float64, seed uint64, opts DatasetOptions) (*Dataset, error) {
	keys, cols, err := tpch.Q1Input(tpch.GenLineitem(sf, seed))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDataset, err)
	}
	return NewDataset(keys, cols, opts)
}

// Rows returns the resident row count.
func (d *Dataset) Rows() int { return len(d.keys) }

// Cols returns the value-column count.
func (d *Dataset) Cols() int { return len(d.cols) }

// Version returns the dataset's content digest. Results are a pure
// function of (query, Version); the result cache keys on both.
func (d *Dataset) Version() uint64 { return d.version }

// DistinctBound returns the precomputed upper bound on the number of
// distinct keys — the group count no GROUP BY over this data can
// exceed, and the factor memory admission multiplies by the per-group
// tuple price.
func (d *Dataset) DistinctBound() int { return d.distinctBound }

// EstimateBytes returns the estimated peak working memory of q on this
// dataset: the admission-control price a server compares against its
// per-query budget. For a GROUP BY the estimate is
//
//	Σ_p DistinctBound(p, fanout) × (TupleSize(specs) + 2 × rowWidth)
//
// — one encoded state tuple per possible group, plus the finalized
// in-memory rows and their canonical result encoding (rowWidth = 4-byte
// key + 8 bytes per spec). DistinctBound never undercounts distinct
// keys, so the estimate upper-bounds the group-dependent allocations.
func (d *Dataset) EstimateBytes(q Query) (int, error) {
	if err := q.validate(d.Cols()); err != nil {
		return 0, err
	}
	switch q.Kind {
	case QueryGroupBy:
		ts, err := sqlagg.TupleSize(q.Specs)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		rowWidth := 4 + 8*len(q.Specs)
		return d.distinctBound * (ts + 2*rowWidth), nil
	case QueryWindowTotals:
		// Per-key summation states plus the per-row totals column and
		// its 8-byte-per-row canonical encoding.
		st := sqlagg.AggSpec{Kind: sqlagg.AggSum, Levels: q.Levels}
		sz, err := st.StateSize()
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		return d.distinctBound*sz + 16*d.Rows(), nil
	default:
		return 0, fmt.Errorf("%w: unknown query kind %d", ErrBadQuery, byte(q.Kind))
	}
}

// digestRows computes the FNV-64a content digest over the keys and the
// exact bit patterns of every value column. Bit patterns, not values:
// two datasets that differ only in a NaN payload or a signed zero are
// different data and must not share cache entries.
func digestRows(keys []uint32, cols [][]float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, k := range keys {
		b[0], b[1], b[2], b[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
		h.Write(b[:4])
	}
	for _, col := range cols {
		for _, v := range col {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(bits >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	return h.Sum64()
}
