package serve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/sqlagg"
)

// TestMetricsConsistencyUnderConcurrency is the serving layer's metric
// invariant under full concurrency: after a mixed barrage — successes,
// cache hits, invalid queries, overload and timeout rejections, and
// post-close rejections racing from many goroutines — every received
// query landed in exactly one outcome counter, so serve_queries_total
// equals the serve_queries_outcome_total family's sum and the issued
// count. Run under -race in CI; this is the same check the nightly
// sweep applies to a live /metrics scrape.
func TestMetricsConsistencyUnderConcurrency(t *testing.T) {
	ds := testDataset(t, 1<<9, 32, 2)
	s := mustServer(t, ds, Options{
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueTimeout:  5 * time.Millisecond,
		CacheEntries:  8,
	})
	// A little execution latency makes the queue fill and time out, so
	// the barrage genuinely exercises the rejection outcomes too.
	s.execGate = func() { time.Sleep(200 * time.Microsecond) }

	queries := []Query{
		GroupBy(sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 0}),
		WindowTotals(1, 0),
		{Kind: 77}, // invalid: unknown kind
		GroupBy(),  // invalid: no aggregates
	}
	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, _ = s.Do(queries[(g+i)%len(queries)])
			}
		}(g)
	}
	wg.Wait()

	// A few queries against the closed server land in the "closed"
	// outcome — still inside the invariant.
	const afterClose = 3
	s.Close()
	for i := 0; i < afterClose; i++ {
		_, _ = s.Do(queries[0])
	}

	snap := s.Registry().Snapshot()
	total := snap["serve_queries_total"]
	if want := float64(goroutines*perG + afterClose); total != want {
		t.Fatalf("serve_queries_total = %v, want %v issued", total, want)
	}
	if byOutcome := snap.Sum("serve_queries_outcome_total{"); byOutcome != total {
		t.Fatalf("outcome family sums to %v, want serve_queries_total %v", byOutcome, total)
	}
	for _, outcome := range []string{outExecuted, outInvalid, outClosed} {
		if snap[`serve_queries_outcome_total{outcome="`+outcome+`"}`] == 0 {
			t.Fatalf("barrage never produced outcome %q — the mix is not exercising the classifier", outcome)
		}
	}
	// The typed Stats view reads the same registry: spot-check the
	// mapping.
	st := s.Stats()
	if float64(st.Served) != snap[`serve_queries_outcome_total{outcome="hit"}`]+snap[`serve_queries_outcome_total{outcome="executed"}`] {
		t.Fatalf("Stats.Served %d disagrees with the outcome counters", st.Served)
	}
}

// tamperTransport corrupts the first non-empty gather payload node 1
// sends toward the root — undetectably from the wire's point of view
// (ChanTransport passes frames by reference; there is no CRC to
// recompute, and the flipped byte lands in an aggregate's float64, so
// the payload still decodes). Deliberately not a BatchSender: that
// keeps sendChunks on the per-frame Send path this wrapper observes.
type tamperTransport struct {
	dist.Transport
	once sync.Once
}

func (t *tamperTransport) Send(f dist.Frame) error {
	if f.Kind == dist.KindGather && f.From == 1 && len(f.Payload) > 0 {
		t.once.Do(func() {
			p := append([]byte(nil), f.Payload...)
			p[len(p)-1] ^= 0x40 // an exponent bit of the last aggregate
			f.Payload = p
		})
	}
	return t.Transport.Send(f)
}

// TestDigestProvenance is the trace model's core claim: when one
// backend execution diverges, comparing its trace against a clean
// trace of the same query localizes the fault to the first hop whose
// span digest disagrees — here the gather hop, because the corruption
// was injected into a gather frame after a byte-identical shuffle.
func TestDigestProvenance(t *testing.T) {
	ds := testDataset(t, 1<<12, 256, 2)
	q := GroupBy(testSpecs()...)

	run := func(opts Options) (*Result, *obs.Trace) {
		t.Helper()
		s := mustServer(t, ds, opts)
		r, err := s.Do(q)
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		tr := s.Trace(r.TraceID)
		if tr == nil {
			t.Fatalf("no trace recorded for id %d", r.TraceID)
		}
		return r, tr
	}

	clean, trClean := run(Options{Distributed: true, CacheEntries: -1})
	tampered, trTampered := run(Options{
		Distributed:  true,
		CacheEntries: -1,
		Dist: dist.Config{NewTransport: func(n int) (dist.Transport, error) {
			inner, err := dist.ChanTransportFactory(n)
			if err != nil {
				return nil, err
			}
			return &tamperTransport{Transport: inner}, nil
		}},
	})

	if bytes.Equal(clean.Bytes, tampered.Bytes) {
		t.Fatal("tampering with a gather frame did not change the result")
	}
	if hop := obs.FirstDivergence(trTampered, trClean); hop != "gather" {
		t.Fatalf("FirstDivergence = %q, want %q (the hop the corruption entered)", hop, "gather")
	}

	// The shuffle digests must agree: the divergence is provably
	// downstream of the shuffle, which is exactly what exonerates it.
	digest := func(tr *obs.Trace, name string) string {
		t.Helper()
		for _, sp := range tr.Spans() {
			if sp.Name == name && sp.Digest != "" {
				return sp.Digest
			}
		}
		t.Fatalf("trace %d has no digest-carrying %q span", tr.ID, name)
		return ""
	}
	if a, b := digest(trClean, "shuffle"), digest(trTampered, "shuffle"); a != b {
		t.Fatalf("shuffle digests diverge (%s vs %s); corruption was injected at gather", a, b)
	}
	if a, b := digest(trClean, "merge"), digest(trTampered, "merge"); a == b {
		t.Fatal("merge digests agree despite divergent results")
	}

	// Identical clean executions agree on every hop.
	clean2, trClean2 := run(Options{Distributed: true, CacheEntries: -1})
	if !bytes.Equal(clean.Bytes, clean2.Bytes) {
		t.Fatal("clean reruns disagree — determinism broken independent of tracing")
	}
	if hop := obs.FirstDivergence(trClean, trClean2); hop != "" {
		t.Fatalf("clean reruns diverge at %q", hop)
	}
}
