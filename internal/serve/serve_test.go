package serve

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlagg"
	"repro/internal/workload"
)

func testDataset(t *testing.T, n int, ngroups uint32, ncols int) *Dataset {
	t.Helper()
	ds, err := SyntheticDataset(42, n, ngroups, ncols, workload.MixedMag, DatasetOptions{Shards: 3})
	if err != nil {
		t.Fatalf("SyntheticDataset: %v", err)
	}
	return ds
}

func mustServer(t *testing.T, ds *Dataset, opts Options) *Server {
	t.Helper()
	s, err := NewServer(ds, opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// testSpecs is a catalog-spanning aggregate list: every state family
// (plain sum, count, avg, variance-backed, min/max) over 2 columns.
func testSpecs() []sqlagg.AggSpec {
	return []sqlagg.AggSpec{
		{Kind: sqlagg.AggSum, Col: 0},
		{Kind: sqlagg.AggCount, Col: 0},
		{Kind: sqlagg.AggAvg, Col: 1},
		{Kind: sqlagg.AggStddevSamp, Col: 0},
		{Kind: sqlagg.AggMin, Col: 1},
		{Kind: sqlagg.AggMax, Col: 0},
	}
}

func TestQueryEncodeCanonical(t *testing.T) {
	// Levels 0 and the explicit default must share one encoding (and
	// therefore one cache entry).
	a, err := GroupBy(sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 3}).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b, err := GroupBy(sqlagg.AggSpec{Kind: sqlagg.AggSum, Levels: 2, Col: 3}).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("level 0 and explicit default levels encode differently")
	}

	for _, q := range []Query{GroupBy(testSpecs()...), WindowTotals(1, 3)} {
		enc, err := q.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := DecodeQuery(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	}

	// Malformed encodings are errors, never panics.
	for _, bad := range [][]byte{nil, {0}, {9, 1, 2}, {byte(QueryWindowTotals), 0, 0, 0}, {byte(QueryWindowTotals), 1}} {
		if _, err := DecodeQuery(bad); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("DecodeQuery(%v) = %v, want ErrBadQuery", bad, err)
		}
	}
}

func TestBadQueries(t *testing.T) {
	ds := testDataset(t, 1<<10, 64, 2)
	s := mustServer(t, ds, Options{})
	cases := []Query{
		{},                                // zero value
		{Kind: 77},                        // unknown kind
		GroupBy(),                         // no aggregates
		GroupBy(sqlagg.AggSpec{Kind: 99}), // unregistered aggregate
		GroupBy(sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 2}), // column out of range
		WindowTotals(5, 0),   // column out of range
		WindowTotals(0, 100), // levels out of range
	}
	for _, q := range cases {
		if _, err := s.Do(q); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("Do(%+v) = %v, want ErrBadQuery", q, err)
		}
	}
}

func TestBudgetRejection(t *testing.T) {
	ds := testDataset(t, 1<<12, 1024, 2)
	s := mustServer(t, ds, Options{MemoryBudget: 64}) // far below any real query
	_, err := s.Do(GroupBy(testSpecs()...))
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("Do under a 64-byte budget = %v, want ErrOverBudget", err)
	}
	if st := s.Stats(); st.RejectedBudget != 1 || st.Served != 0 {
		t.Fatalf("stats after budget rejection: %+v", st)
	}

	// The same query clears a realistic budget: the estimate is a bound
	// on group-dependent memory, not a blank refusal.
	est, err := ds.EstimateBytes(GroupBy(testSpecs()...))
	if err != nil {
		t.Fatalf("EstimateBytes: %v", err)
	}
	roomy := mustServer(t, ds, Options{MemoryBudget: est})
	if _, err := roomy.Do(GroupBy(testSpecs()...)); err != nil {
		t.Fatalf("Do under budget == estimate: %v", err)
	}
}

// TestAdmissionControl drives the gate deterministically: one slot and
// a one-deep queue, with execution blocked on a test gate. The second
// query queues, the third is turned away with ErrOverloaded, and the
// queued one times out with ErrQueueTimeout once the timeout elapses.
func TestAdmissionControl(t *testing.T) {
	ds := testDataset(t, 1<<8, 16, 1)
	s := mustServer(t, ds, Options{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  50 * time.Millisecond,
		CacheEntries:  -1, // every query must execute
	})
	hold := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.execGate = func() {
		entered <- struct{}{}
		<-hold
	}

	q := GroupBy(sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 0})
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.Do(q)
		firstDone <- err
	}()
	<-entered // the first query now owns the only slot

	// The second query joins the queue and eventually times out.
	queuedDone := make(chan error, 1)
	go func() {
		_, err := s.Do(q)
		queuedDone <- err
	}()
	// Wait until it is genuinely queued before probing the full-queue
	// rejection path.
	for i := 0; s.queued.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Do(q); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third query = %v, want ErrOverloaded", err)
	}
	if err := <-queuedDone; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued query = %v, want ErrQueueTimeout", err)
	}

	close(hold)
	if err := <-firstDone; err != nil {
		t.Fatalf("first query: %v", err)
	}
	st := s.Stats()
	if st.RejectedQueue != 1 || st.RejectedTimeout != 1 || st.Served != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSustains32Inflight holds ≥32 queries simultaneously in execution
// behind a barrier that only opens when all 32 have entered — the
// concurrency floor of the serving layer, deterministic (not a timing
// race) and meaningful under -race.
func TestSustains32Inflight(t *testing.T) {
	const want = 32
	ds := testDataset(t, 1<<10, 64, 2)
	s := mustServer(t, ds, Options{
		MaxConcurrent: want,
		CacheEntries:  -1, // force every query through execution
	})
	var barrier sync.WaitGroup
	barrier.Add(want)
	s.execGate = func() {
		barrier.Done()
		barrier.Wait() // every query holds here until all 32 are in flight
	}

	q := GroupBy(testSpecs()...)
	var wg sync.WaitGroup
	errs := make([]error, want)
	results := make([][]byte, want)
	for i := 0; i < want; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Do(q)
			if err == nil {
				results[i] = r.Bytes
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("query %d returned different bytes than query 0", i)
		}
	}
	if st := s.Stats(); st.PeakInflight < want {
		t.Fatalf("peak in-flight %d, want ≥ %d", st.PeakInflight, want)
	}
}

func TestCacheHitByteIdenticalToRecomputation(t *testing.T) {
	ds := testDataset(t, 1<<12, 512, 2)
	s := mustServer(t, ds, Options{})
	uncached := mustServer(t, ds, Options{CacheEntries: -1})

	for _, q := range []Query{GroupBy(testSpecs()...), WindowTotals(0, 0)} {
		cold, err := s.Do(q)
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		if cold.CacheHit {
			t.Fatal("first execution reported a cache hit")
		}
		warm, err := s.Do(q)
		if err != nil {
			t.Fatalf("warm: %v", err)
		}
		if !warm.CacheHit {
			t.Fatal("second execution missed the cache")
		}
		// The hit must be byte-identical to an independent recomputation
		// on a server with no cache at all.
		fresh, err := uncached.Do(q)
		if err != nil {
			t.Fatalf("recompute: %v", err)
		}
		if !bytes.Equal(warm.Bytes, fresh.Bytes) {
			t.Fatal("cache hit differs from recomputation")
		}
		if !bytes.Equal(cold.Bytes, warm.Bytes) {
			t.Fatal("cache returned different bytes than it stored")
		}
	}
	if st := s.Stats(); st.CacheHits != 2 || st.CacheMisses != 2 {
		t.Fatalf("stats: %+v", st)
	}

	// VerifyCache recomputes hits and confirms the invariant inline.
	vs := mustServer(t, ds, Options{VerifyCache: true})
	q := GroupBy(testSpecs()...)
	if _, err := vs.Do(q); err != nil {
		t.Fatalf("verify cold: %v", err)
	}
	r, err := vs.Do(q)
	if err != nil {
		t.Fatalf("verify warm: %v", err)
	}
	if !r.CacheHit {
		t.Fatal("verify warm missed the cache")
	}
}

// TestConcurrentEquivalenceMatrix is the serving layer's core claim:
// the same query answered from N goroutines — cache cold and warm, on
// the local engine and the distributed backend — returns bit-identical
// results everywhere. Run under -race in CI.
func TestConcurrentEquivalenceMatrix(t *testing.T) {
	const goroutines = 8
	ds := testDataset(t, 1<<12, 256, 3)
	queries := []Query{
		GroupBy(testSpecs()...),
		GroupBy(
			sqlagg.AggSpec{Kind: sqlagg.AggVarPop, Levels: 3, Col: 2},
			sqlagg.AggSpec{Kind: sqlagg.AggSum, Levels: 3, Col: 2},
		),
		WindowTotals(2, 0),
	}

	backends := []struct {
		name string
		opts Options
	}{
		{"local", Options{MaxConcurrent: goroutines}},
		{"cluster", Options{MaxConcurrent: goroutines, Distributed: true}},
	}

	// reference[qi] is filled by the first backend and every later
	// (backend, temperature, goroutine) cell must match it.
	reference := make([][]byte, len(queries))

	for _, be := range backends {
		for _, temperature := range []string{"cold", "warm"} {
			opts := be.opts
			if temperature == "cold" {
				opts.CacheEntries = -1 // all N goroutines recompute
			}
			s := mustServer(t, ds, opts)
			if temperature == "warm" {
				for _, q := range queries {
					if _, err := s.Do(q); err != nil {
						t.Fatalf("%s/%s prewarm: %v", be.name, temperature, err)
					}
				}
			}
			for qi, q := range queries {
				got := make([][]byte, goroutines)
				errs := make([]error, goroutines)
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						r, err := s.Do(q)
						if err == nil {
							got[g] = r.Bytes
						}
						errs[g] = err
					}(g)
				}
				wg.Wait()
				for g := 0; g < goroutines; g++ {
					if errs[g] != nil {
						t.Fatalf("%s/%s query %d goroutine %d: %v", be.name, temperature, qi, g, errs[g])
					}
					if reference[qi] == nil {
						reference[qi] = got[g]
					}
					if !bytes.Equal(got[g], reference[qi]) {
						t.Fatalf("%s/%s query %d goroutine %d: bytes diverge from the reference cell",
							be.name, temperature, qi, g)
					}
				}
			}
		}
	}
}

func TestWindowTotalsMatchSqlagg(t *testing.T) {
	ds := testDataset(t, 1<<10, 32, 2)
	s := mustServer(t, ds, Options{})
	r, err := s.Do(WindowTotals(1, 0))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	totals, err := r.Totals()
	if err != nil {
		t.Fatalf("Totals: %v", err)
	}
	want := sqlagg.WindowTotals(ds.keys, ds.cols[1], resolvedLevels(0))
	if len(totals) != len(want) {
		t.Fatalf("%d totals, want %d", len(totals), len(want))
	}
	for i := range want {
		if totals[i] != want[i] && !(totals[i] != totals[i] && want[i] != want[i]) {
			t.Fatalf("row %d: %v, want %v", i, totals[i], want[i])
		}
	}
}

func TestGroupsDecodeAndCount(t *testing.T) {
	ds := testDataset(t, 1<<12, 128, 2)
	s := mustServer(t, ds, Options{})
	r, err := s.Do(GroupBy(
		sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 0},
		sqlagg.AggSpec{Kind: sqlagg.AggCount, Col: 0},
	))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	gs, err := r.Groups()
	if err != nil {
		t.Fatalf("Groups: %v", err)
	}
	distinct := workload.DistinctGroups(ds.keys)
	if len(gs) != distinct {
		t.Fatalf("%d groups, want %d distinct keys", len(gs), distinct)
	}
	var rows float64
	for i := range gs {
		if i > 0 && gs[i].Key <= gs[i-1].Key {
			t.Fatal("groups not strictly key-sorted")
		}
		rows += gs[i].Aggs[1]
	}
	if int(rows) != ds.Rows() {
		t.Fatalf("COUNT sums to %d, want %d rows", int(rows), ds.Rows())
	}
	if len(gs) > ds.DistinctBound() {
		t.Fatalf("distinct bound %d undercounts the %d actual groups", ds.DistinctBound(), len(gs))
	}
}

func TestServerClosed(t *testing.T) {
	ds := testDataset(t, 1<<8, 16, 1)
	s := mustServer(t, ds, Options{})
	q := GroupBy(sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 0})
	if _, err := s.Do(q); err != nil {
		t.Fatalf("Do before close: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Do(q); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Do after close = %v, want ErrServerClosed", err)
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, [][]float64{{1}}, DatasetOptions{}); !errors.Is(err, ErrDataset) {
		t.Fatalf("no rows: %v", err)
	}
	if _, err := NewDataset([]uint32{1}, nil, DatasetOptions{}); !errors.Is(err, ErrDataset) {
		t.Fatalf("no columns: %v", err)
	}
	if _, err := NewDataset([]uint32{1, 2}, [][]float64{{1}}, DatasetOptions{}); !errors.Is(err, ErrDataset) {
		t.Fatalf("ragged column: %v", err)
	}
	if _, err := NewDataset([]uint32{1}, [][]float64{{1}}, DatasetOptions{Fanout: 3}); !errors.Is(err, ErrDataset) {
		t.Fatalf("bad fanout: %v", err)
	}

	// Version digests must separate datasets that differ in one bit.
	a, err := NewDataset([]uint32{1, 2}, [][]float64{{1, 2}}, DatasetOptions{})
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	b, err := NewDataset([]uint32{1, 2}, [][]float64{{1, 2.0000000000000004}}, DatasetOptions{})
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	if a.Version() == b.Version() {
		t.Fatal("one-ulp value change did not change the dataset version")
	}
}

func TestProfilerAccumulates(t *testing.T) {
	ds := testDataset(t, 1<<10, 64, 2)
	s := mustServer(t, ds, Options{})
	if _, err := s.Do(GroupBy(sqlagg.AggSpec{Kind: sqlagg.AggSum, Col: 0})); err != nil {
		t.Fatalf("Do: %v", err)
	}
	labels, times := s.Profile()
	if len(labels) == 0 {
		t.Fatal("no profiled phases after a served query")
	}
	var total time.Duration
	for _, d := range times {
		total += d
	}
	if total <= 0 {
		t.Fatal("profiled time is zero")
	}
}
