package serve

import (
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/dist/proc"
)

// TestMain lets this test binary double as the process-cluster worker:
// the recovery test below spawns a real supervisor, whose workers are
// re-executions of this binary.
func TestMain(m *testing.M) {
	proc.MaybeWorkerMain()
	os.Exit(m.Run())
}

// TestClusterRecoveryDegradation: a server borrowing a cluster that is
// stuck in a recovery window (journal replayed, workers not yet
// re-attached) sheds cluster-bound queries with ErrOverloaded — the
// retryable verdict the HTTP layer turns into 503 + Retry-After —
// while queries that never touch the cluster keep serving.
func TestClusterRecoveryDegradation(t *testing.T) {
	dir := t.TempDir()
	spec := proc.ClusterSpec{Nodes: 1, ReplaceDead: true, Journal: dir}
	c1, err := proc.NewCluster(spec)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for deadline := time.Now().Add(30 * time.Second); !c1.Ready(); {
		if time.Now().After(deadline) {
			t.Fatal("first cluster never formed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close dismisses the worker but leaves its admission in the
	// journal, so the recovered supervisor below respawns nothing and
	// waits for a re-attach that can never come: a permanently open
	// recovery window, exactly what the server must degrade through.
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c2, err := proc.NewCluster(spec)
	if err != nil {
		t.Fatalf("recovering NewCluster: %v", err)
	}
	t.Cleanup(func() { c2.Close() })
	if c2.Ready() {
		t.Fatal("recovered cluster reports Ready with its worker gone")
	}
	if !c2.Recovering() {
		t.Fatal("recovered cluster does not report Recovering")
	}
	if c1.Recovering() {
		t.Fatal("first-formation cluster reports Recovering")
	}
	if st := c2.Stats(); st.Epoch != 2 || st.LastRecovery.IsZero() {
		t.Fatalf("recovered cluster stats: %+v, want epoch 2 and LastRecovery set", st)
	}

	ds := testDataset(t, 1<<10, 64, 2)
	s := mustServer(t, ds, Options{Cluster: c2})
	if _, err := s.Do(GroupBy(testSpecs()...)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cluster-bound query during recovery = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.RejectedRecovering != 1 {
		t.Fatalf("RejectedRecovering = %d, want 1", st.RejectedRecovering)
	}
	// Window totals never leave the serving node: still answered.
	if _, err := s.Do(WindowTotals(0, 0)); err != nil {
		t.Fatalf("local query during recovery: %v", err)
	}
}
