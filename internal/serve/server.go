package serve

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/proc"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sqlagg"
)

// Options configures a Server.
type Options struct {
	// MaxConcurrent caps the queries executing at once (default 4).
	MaxConcurrent int
	// MaxQueue caps the queries waiting for an execution slot beyond
	// the executing ones (default 64). A query arriving to a full queue
	// fails immediately with ErrOverloaded. Negative disables queueing:
	// every query that cannot start at once is ErrOverloaded.
	MaxQueue int
	// QueueTimeout bounds a queued query's wait for a slot (default
	// 2s); expiry fails the query with ErrQueueTimeout.
	QueueTimeout time.Duration
	// MemoryBudget caps one query's estimated working memory in bytes
	// (default 1 GiB; see Dataset.EstimateBytes). Estimates above it
	// fail with ErrOverBudget before execution. Negative disables the
	// check.
	MemoryBudget int
	// CacheEntries caps the result cache (default 256 entries).
	// Negative disables caching.
	CacheEntries int
	// Workers is the per-query engine parallelism (default GOMAXPROCS).
	Workers int
	// Distributed routes GROUP BY queries through the distributed tuple
	// plane over the pre-sharded layout instead of the local partitioned
	// engine. Window queries always run locally. The bits are identical
	// either way; this is a placement decision.
	Distributed bool
	// Dist configures the distributed backend's interconnect (transport
	// factory, chunking, fault plan, …). The in-process transports
	// only: the process-cluster field (Procs) is rejected by NewServer
	// — to serve over worker processes, pass a Cluster handle instead.
	Dist dist.Config
	// Cluster, when non-nil, routes distributed GROUP BY queries
	// through a long-lived multi-process cluster (internal/dist/proc)
	// instead of the in-process tuple plane: each query ships the
	// resident shards as one raw-shard job and the cluster's canonical
	// result bytes are served directly. Implies Distributed. The
	// cluster is borrowed, not owned: Close leaves it running.
	Cluster *proc.Cluster
	// VerifyCache recomputes every cache hit and fails the query if the
	// cached bytes differ from the recomputation — the determinism
	// invariant checked at runtime. For tests and debugging; it defeats
	// the cache's purpose (hits pay a full execution).
	VerifyCache bool
	// TraceEntries caps the ring of retained per-query traces (default
	// 256). Negative disables tracing: queries record no spans and
	// Result.TraceID stays zero.
	TraceEntries int
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 4
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.QueueTimeout == 0 {
		o.QueueTimeout = 2 * time.Second
	}
	if o.MemoryBudget == 0 {
		o.MemoryBudget = 1 << 30
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.TraceEntries == 0 {
		o.TraceEntries = 256
	}
	return o
}

// Stats is a point-in-time snapshot of a server's counters.
type Stats struct {
	// Served counts successfully answered queries (hits included).
	Served uint64
	// CacheHits and CacheMisses split the served GROUP BY / window
	// queries by whether the result cache answered them.
	CacheHits   uint64
	CacheMisses uint64
	// RejectedBudget counts ErrOverBudget rejections, RejectedQueue
	// counts ErrOverloaded, RejectedTimeout counts ErrQueueTimeout.
	RejectedBudget  uint64
	RejectedQueue   uint64
	RejectedTimeout uint64
	// RejectedRecovering counts queries turned away (ErrOverloaded)
	// because the backing cluster was inside a recovery window —
	// replaying its journal or waiting for workers to re-attach. Cache
	// hits are still served through such a window.
	RejectedRecovering uint64
	// Inflight is the number of queries executing right now;
	// PeakInflight the highest concurrency the server has sustained.
	Inflight     int64
	PeakInflight int64
	// CacheEntries is the current result-cache population.
	CacheEntries int
}

// Server is a long-lived query server over one resident Dataset. It is
// safe for concurrent use: any number of goroutines may call Do at
// once; admission control bounds how many execute simultaneously.
type Server struct {
	ds  *Dataset
	opt Options

	slots  chan struct{} // execution-slot semaphore (cap MaxConcurrent)
	queued atomic.Int64  // queries waiting for a slot

	cache *resultCache

	// prof accumulates per-phase serving time across all queries — one
	// shared profiler, charged concurrently (engine.Profiler is
	// goroutine-safe).
	prof *engine.Profiler

	// reg is this server's private metric registry (see Registry):
	// per-server, because one process may run many servers and their
	// counts must not bleed into each other. met holds the pre-resolved
	// handles the hot path records through.
	reg    *obs.Registry
	met    serveMetrics
	traces *obs.TraceStore // nil when tracing is disabled

	closed    chan struct{}
	closeOnce sync.Once

	// execGate, when non-nil, runs at the top of every admitted
	// execution — a test hook for holding queries in flight.
	execGate func()
}

// Query outcome labels. Every Do call ends in exactly one of them, so
// serve_queries_total always equals the serve_queries_outcome_total
// family's sum — the consistency invariant the metrics tests (and the
// nightly sweep's /metrics scrape) check under full concurrency.
const (
	outHit           = "hit"
	outExecuted      = "executed"
	outRejBudget     = "rejected_budget"
	outRejOverload   = "rejected_overload"
	outRejTimeout    = "rejected_timeout"
	outRejRecovering = "rejected_recovering"
	outError         = "error"
	outClosed        = "closed"
	outInvalid       = "invalid"
)

var outcomeNames = []string{
	outHit, outExecuted, outRejBudget, outRejOverload, outRejTimeout,
	outRejRecovering, outError, outClosed, outInvalid,
}

// serveMetrics is a server's pre-resolved handles into its registry.
type serveMetrics struct {
	queries     *obs.Counter
	outcomes    map[string]*obs.Counter
	cacheMisses *obs.Counter
	queueWait   *obs.Histogram
	execSecs    *obs.Histogram
	inflight    *obs.Gauge
	peak        *obs.Gauge
}

func newServeMetrics(r *obs.Registry) serveMetrics {
	m := serveMetrics{
		queries: r.Counter("serve_queries_total",
			"Queries received by Do, whatever their fate."),
		outcomes: make(map[string]*obs.Counter, len(outcomeNames)),
		cacheMisses: r.Counter("serve_cache_misses_total",
			"Executed queries whose result filled the cache."),
		queueWait: r.Histogram("serve_queue_wait_seconds",
			"Admission wait from arrival at the gate to holding an execution slot.", nil),
		execSecs: r.Histogram("serve_exec_seconds",
			"Backend execution latency of admitted queries.", nil),
		inflight: r.Gauge("serve_inflight",
			"Queries executing right now."),
		peak: r.Gauge("serve_inflight_peak",
			"Highest execution concurrency this server has sustained."),
	}
	for _, o := range outcomeNames {
		m.outcomes[o] = r.Counter(`serve_queries_outcome_total{outcome="`+o+`"}`,
			"Queries by final outcome; the family sums to serve_queries_total.")
	}
	return m
}

// NewServer starts a server over ds. The dataset must outlive the
// server and stay unmutated.
func NewServer(ds *Dataset, opts Options) (*Server, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrDataset)
	}
	o := opts.withDefaults()
	if o.MaxConcurrent < 0 {
		return nil, fmt.Errorf("%w: MaxConcurrent %d", ErrDataset, o.MaxConcurrent)
	}
	if o.Dist.Procs != 0 {
		return nil, fmt.Errorf("%w: the serving layer spawns no cluster of its own (Dist.Procs); pass a Cluster handle instead", ErrDataset)
	}
	if o.Cluster != nil {
		o.Distributed = true
	}
	reg := obs.NewRegistry()
	s := &Server{
		ds:     ds,
		opt:    o,
		slots:  make(chan struct{}, o.MaxConcurrent),
		prof:   engine.NewProfiler(),
		reg:    reg,
		met:    newServeMetrics(reg),
		closed: make(chan struct{}),
	}
	if o.TraceEntries > 0 {
		s.traces = obs.NewTraceStore(o.TraceEntries)
	}
	if o.CacheEntries > 0 {
		s.cache = newResultCache(o.CacheEntries)
	}
	return s, nil
}

// Dataset returns the server's resident data.
func (s *Server) Dataset() *Dataset { return s.ds }

// Stats returns a snapshot of the server's counters. They are read
// from the same registry Registry exposes; Stats is the typed view,
// the registry the enumerable one.
func (s *Server) Stats() Stats {
	st := Stats{
		Served:             s.met.outcomes[outHit].Value() + s.met.outcomes[outExecuted].Value(),
		CacheHits:          s.met.outcomes[outHit].Value(),
		CacheMisses:        s.met.cacheMisses.Value(),
		RejectedBudget:     s.met.outcomes[outRejBudget].Value(),
		RejectedQueue:      s.met.outcomes[outRejOverload].Value(),
		RejectedTimeout:    s.met.outcomes[outRejTimeout].Value(),
		RejectedRecovering: s.met.outcomes[outRejRecovering].Value(),
		Inflight:           s.met.inflight.Value(),
		PeakInflight:       s.met.peak.Value(),
	}
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
	}
	return st
}

// Registry exposes the server's private metric registry: the outcome
// counters, latency histograms, and inflight gauges behind Stats, in
// scrapeable form (obs.Handler serves it as Prometheus text).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Trace returns the recorded trace behind a Result.TraceID, or nil if
// tracing is disabled, the ID was never assigned, or the ring evicted
// it.
func (s *Server) Trace(id uint64) *obs.Trace {
	if s.traces == nil {
		return nil
	}
	return s.traces.Get(id)
}

// Profile returns the accumulated per-phase serving time, in
// first-use order.
func (s *Server) Profile() (labels []string, times []time.Duration) {
	labels = s.prof.Labels()
	times = make([]time.Duration, len(labels))
	for i, l := range labels {
		times[i] = s.prof.Get(l)
	}
	return labels, times
}

// Close shuts the server down: queued queries fail with
// ErrServerClosed, new queries are rejected. Idempotent. In-flight
// executions run to completion (their callers still hold slots).
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	return nil
}

// Do answers one query. The pipeline is: validate and canonically
// encode; price the query against the memory budget (ErrOverBudget);
// consult the result cache; admit (bounded slots, bounded queue with
// timeout — ErrOverloaded / ErrQueueTimeout); execute on the selected
// backend; cache and return the canonical result bytes.
//
// Cache hits are answered without taking an execution slot: a hit does
// no data work, so making it wait behind executing queries would only
// add latency. Budget pricing still runs first — whether a query is
// answerable is a property of the query, not of the cache's mood.
//
// Every call ends in exactly one outcome counter (the do return value
// names it), which is what makes the metrics sum-consistent under any
// concurrency; the per-query trace records the same pipeline as spans
// with the digest of the canonical bytes each hop observed.
func (s *Server) Do(q Query) (*Result, error) {
	s.met.queries.Inc()
	var tr *obs.Trace
	if s.traces != nil {
		tr = s.traces.NewTrace(traceName(q))
	}
	res, outcome, err := s.do(q, tr)
	s.met.outcomes[outcome].Inc()
	if tr != nil {
		tr.SetOutcome(outcome)
		if res != nil {
			res.TraceID = tr.ID
		}
	}
	return res, err
}

// traceName labels a query's trace by its kind.
func traceName(q Query) string {
	switch q.Kind {
	case QueryGroupBy:
		return "groupby"
	case QueryWindowTotals:
		return "window"
	default:
		return "unknown"
	}
}

// execOutcome classifies an admission/execution error into its outcome
// label.
func execOutcome(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return outRejOverload
	case errors.Is(err, ErrQueueTimeout):
		return outRejTimeout
	case errors.Is(err, ErrServerClosed):
		return outClosed
	default:
		return outError
	}
}

// do is Do's single-exit-classified body: every return names the
// query's final outcome. tr may be nil (span recording no-ops).
func (s *Server) do(q Query, tr *obs.Trace) (*Result, string, error) {
	select {
	case <-s.closed:
		return nil, outClosed, ErrServerClosed
	default:
	}

	adm := tr.Start("admission")
	if err := q.validate(s.ds.Cols()); err != nil {
		adm.End("", err.Error())
		return nil, outInvalid, err
	}
	enc, err := q.Encode()
	if err != nil {
		adm.End("", err.Error())
		return nil, outInvalid, err
	}
	// The admission digest fingerprints the canonical query encoding:
	// two traces of the same query anchor at the same digest, so a
	// later divergence is provably downstream of admission.
	adm.End(obs.DigestOf(enc), "")

	if s.opt.MemoryBudget >= 0 {
		sp := tr.Start("budget")
		est, err := s.ds.EstimateBytes(q)
		if err != nil {
			sp.End("", err.Error())
			return nil, outInvalid, err
		}
		if est > s.opt.MemoryBudget {
			sp.End("", fmt.Sprintf("estimate %d bytes over budget %d", est, s.opt.MemoryBudget))
			return nil, outRejBudget, fmt.Errorf("%w: estimated %d bytes over budget %d (distinct-key bound %d)",
				ErrOverBudget, est, s.opt.MemoryBudget, s.ds.distinctBound)
		}
		sp.End("", fmt.Sprintf("estimate %d bytes", est))
	}

	key := cacheKey(s.ds.version, enc)
	if s.cache != nil {
		sp := tr.Start("cache")
		if cached, ok := s.cache.get(key); ok {
			if s.opt.VerifyCache {
				fresh, err := s.admitAndExecute(q, tr)
				if err != nil {
					sp.End("", err.Error())
					return nil, execOutcome(err), err
				}
				if !bytes.Equal(cached, fresh) {
					sp.End(obs.DigestOf(cached), "verify diverged")
					return nil, outError, fmt.Errorf("serve: cache hit diverged from recomputation for query %x — determinism invariant broken", enc)
				}
			}
			sp.End(obs.DigestOf(cached), "hit")
			return &Result{Query: q, Version: s.ds.version, Bytes: cached, CacheHit: true}, outHit, nil
		}
		sp.End("", "miss")
	}

	// Graceful degradation: while the backing cluster is inside a
	// recovery window (journal replay, workers re-attaching after a
	// supervisor restart) new cluster-bound work is turned away as
	// overloaded — retryable, the HTTP layer answers 503 + Retry-After —
	// rather than queued into a replacement timeout. Cache hits were
	// already served above; the gate lifts on its own once the previous
	// members have all re-attached. Recovering (not !Ready) is the
	// predicate on purpose: a cluster that is merely still forming for
	// the first time should queue normally, not shed.
	if q.Kind == QueryGroupBy && s.opt.Cluster != nil && s.opt.Cluster.Recovering() {
		return nil, outRejRecovering, fmt.Errorf("%w: cluster recovering, workers re-attaching", ErrOverloaded)
	}

	out, err := s.admitAndExecute(q, tr)
	if err != nil {
		if q.Kind == QueryGroupBy && s.opt.Cluster != nil && errors.Is(err, proc.ErrRecovering) {
			// The recovery window opened mid-flight: same retryable verdict.
			return nil, outRejRecovering, fmt.Errorf("%w: %v", ErrOverloaded, err)
		}
		return nil, execOutcome(err), err
	}
	if s.cache != nil {
		sp := tr.Start("cache-fill")
		s.cache.put(key, out)
		s.met.cacheMisses.Inc()
		sp.End(obs.DigestOf(out), "")
	}
	return &Result{Query: q, Version: s.ds.version, Bytes: out}, outExecuted, nil
}

// admitAndExecute runs the admission gate, then executes q on the
// configured backend and returns the canonical result bytes.
func (s *Server) admitAndExecute(q Query, tr *obs.Trace) ([]byte, error) {
	wait := tr.Start("queue")
	waitStart := time.Now()
	select {
	case s.slots <- struct{}{}:
		// Free slot: start immediately.
	default:
		// All slots busy: join the bounded wait queue.
		if s.queued.Add(1) > int64(s.opt.MaxQueue) {
			s.queued.Add(-1)
			wait.End("", "queue full")
			return nil, fmt.Errorf("%w: %d executing, %d queued", ErrOverloaded, s.opt.MaxConcurrent, s.opt.MaxQueue)
		}
		timer := time.NewTimer(s.opt.QueueTimeout)
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
			timer.Stop()
		case <-timer.C:
			s.queued.Add(-1)
			wait.End("", "timed out")
			return nil, fmt.Errorf("%w after %v", ErrQueueTimeout, s.opt.QueueTimeout)
		case <-s.closed:
			s.queued.Add(-1)
			timer.Stop()
			wait.End("", "server closed")
			return nil, ErrServerClosed
		}
	}
	defer func() { <-s.slots }()
	s.met.queueWait.Observe(time.Since(waitStart).Seconds())
	wait.End("", "")

	cur := s.met.inflight.Add(1)
	s.met.peak.Max(cur)
	defer s.met.inflight.Add(-1)

	if s.execGate != nil {
		s.execGate()
	}
	sp := tr.Start("execute")
	execStart := time.Now()
	out, err := s.execute(q, tr)
	s.met.execSecs.Observe(time.Since(execStart).Seconds())
	if err != nil {
		sp.End("", err.Error())
		return nil, err
	}
	sp.End(obs.DigestOf(out), "")
	return out, nil
}

// execute runs q on the selected backend. Every path ends in the same
// canonical encoding, so backends are interchangeable bit for bit.
// The trace (nil-safe) receives the backend's hop digests: the dist
// plane reports "shuffle" and "gather" from the root node, and every
// GROUP BY path records "merge" over the final canonical bytes — so
// two traces of the same query localize a divergence to the first hop
// whose digest disagrees (obs.FirstDivergence).
func (s *Server) execute(q Query, tr *obs.Trace) (out []byte, err error) {
	switch q.Kind {
	case QueryGroupBy:
		if s.opt.Cluster != nil {
			// The cluster's result payload already is the canonical
			// encoding every other backend produces — serve it as-is.
			var res *proc.Result
			s.prof.Measure("exec/groupby/proc", func() {
				res, err = s.opt.Cluster.Run(proc.Job{
					Workers: s.opt.Workers,
					Specs:   q.Specs,
					Source:  proc.RowShards(s.ds.shardKeys, s.ds.shardCols),
				})
			})
			if err != nil {
				return nil, fmt.Errorf("serve: group by: %w", err)
			}
			tr.Hop("merge", obs.FNV64a(res.Payload))
			return res.Payload, nil
		}
		var gs []dist.TupleGroup
		if s.opt.Distributed {
			cfg := s.opt.Dist
			if tr != nil {
				cfg.Trace = func(hop string, digest uint64) { tr.Hop(hop, digest) }
			}
			s.prof.Measure("exec/groupby/cluster", func() {
				gs, err = dist.AggregateTuplesConfig(s.ds.shardKeys, s.ds.shardCols, s.opt.Workers, q.Specs, cfg)
			})
		} else {
			s.prof.Measure("exec/groupby/local", func() {
				gs, err = s.groupByLocal(q.Specs)
			})
		}
		if err != nil {
			return nil, fmt.Errorf("serve: group by: %w", err)
		}
		s.prof.Measure("encode/groups", func() {
			out = dist.EncodeTupleGroups(gs, len(q.Specs))
		})
		tr.Hop("merge", obs.FNV64a(out))
		return out, nil
	case QueryWindowTotals:
		// Window totals run on the serving node for every backend: the
		// output is row-aligned, and its per-key totals come from the
		// same reproducible states, so the bits match regardless.
		s.prof.Measure("exec/window", func() {
			totals := sqlagg.WindowTotals(s.ds.keys, s.ds.cols[q.Col], resolvedLevels(q.Levels))
			out = encodeTotals(totals)
		})
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown query kind %d", ErrBadQuery, byte(q.Kind))
	}
}

// groupByLocal is the local GROUP BY engine: each resident partition is
// aggregated independently (keys only collide within their partition),
// a worker pool walks the partitions, and the per-partition group lists
// are concatenated and key-sorted. Group tables are sized from
// DistinctBound, so they never rehash mid-partition. The result bits
// are identical to the distributed plane's: the aggregate states are
// order-independent, so it does not matter which backend folded which
// row first.
func (s *Server) groupByLocal(specs []sqlagg.AggSpec) ([]dist.TupleGroup, error) {
	nparts := s.ds.part.NumPartitions()
	perPart := make([][]dist.TupleGroup, nparts)
	errs := make([]error, nparts)

	workers := s.opt.Workers
	if workers > nparts {
		workers = nparts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= nparts {
					return
				}
				perPart[p], errs[p] = s.aggPartition(p, specs)
			}
		}()
	}
	wg.Wait()

	total := 0
	for p := range perPart {
		if errs[p] != nil {
			return nil, errs[p]
		}
		total += len(perPart[p])
	}
	out := make([]dist.TupleGroup, 0, total)
	for p := range perPart {
		out = append(out, perPart[p]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// aggPartition folds one resident partition into finalized groups.
func (s *Server) aggPartition(p int, specs []sqlagg.AggSpec) ([]dist.TupleGroup, error) {
	pk, _ := s.ds.part.Partition(p)
	if len(pk) == 0 {
		return nil, nil
	}
	base := s.ds.part.Off[p]
	bound := s.ds.part.DistinctBound(p, uint32(s.ds.fanout))

	idx := make(map[uint32]int, bound)
	order := make([]uint32, 0, bound)
	tuples := make([][]sqlagg.AggState, 0, bound)
	for i, k := range pk {
		j, ok := idx[k]
		if !ok {
			sts, err := sqlagg.NewStates(specs)
			if err != nil {
				return nil, err
			}
			j = len(tuples)
			idx[k] = j
			order = append(order, k)
			tuples = append(tuples, sts)
		}
		row := base + i
		for si := range specs {
			tuples[j][si].Add(s.ds.pcols[specs[si].Col][row])
		}
	}

	gs := make([]dist.TupleGroup, len(tuples))
	for j := range tuples {
		aggs := make([]float64, len(specs))
		for si := range specs {
			aggs[si] = tuples[j][si].Value()
		}
		gs[j] = dist.TupleGroup{Key: order[j], Aggs: aggs}
	}
	return gs, nil
}

// cacheKey prefixes the canonical query encoding with the dataset
// version: a result is a pure function of exactly that pair.
func cacheKey(version uint64, enc []byte) string {
	k := make([]byte, 8+len(enc))
	for i := 0; i < 8; i++ {
		k[i] = byte(version >> (8 * i))
	}
	copy(k[8:], enc)
	return string(k)
}

// resultCache is a bounded map from (version, query) to canonical
// result bytes with FIFO eviction — recency tracking buys nothing when
// every entry is equally valid forever (the dataset is immutable;
// entries never go stale, they only compete for space).
type resultCache struct {
	mu    sync.Mutex
	max   int
	m     map[string][]byte
	order []string
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, m: make(map[string][]byte, max)}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *resultCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return // a concurrent miss already stored the identical bytes
	}
	if len(c.m) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.m[key] = val
	c.order = append(c.order, key)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
