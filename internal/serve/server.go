package serve

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/proc"
	"repro/internal/engine"
	"repro/internal/sqlagg"
)

// Options configures a Server.
type Options struct {
	// MaxConcurrent caps the queries executing at once (default 4).
	MaxConcurrent int
	// MaxQueue caps the queries waiting for an execution slot beyond
	// the executing ones (default 64). A query arriving to a full queue
	// fails immediately with ErrOverloaded. Negative disables queueing:
	// every query that cannot start at once is ErrOverloaded.
	MaxQueue int
	// QueueTimeout bounds a queued query's wait for a slot (default
	// 2s); expiry fails the query with ErrQueueTimeout.
	QueueTimeout time.Duration
	// MemoryBudget caps one query's estimated working memory in bytes
	// (default 1 GiB; see Dataset.EstimateBytes). Estimates above it
	// fail with ErrOverBudget before execution. Negative disables the
	// check.
	MemoryBudget int
	// CacheEntries caps the result cache (default 256 entries).
	// Negative disables caching.
	CacheEntries int
	// Workers is the per-query engine parallelism (default GOMAXPROCS).
	Workers int
	// Distributed routes GROUP BY queries through the distributed tuple
	// plane over the pre-sharded layout instead of the local partitioned
	// engine. Window queries always run locally. The bits are identical
	// either way; this is a placement decision.
	Distributed bool
	// Dist configures the distributed backend's interconnect (transport
	// factory, chunking, fault plan, …). The in-process transports
	// only: the process-cluster field (Procs) is rejected by NewServer
	// — to serve over worker processes, pass a Cluster handle instead.
	Dist dist.Config
	// Cluster, when non-nil, routes distributed GROUP BY queries
	// through a long-lived multi-process cluster (internal/dist/proc)
	// instead of the in-process tuple plane: each query ships the
	// resident shards as one raw-shard job and the cluster's canonical
	// result bytes are served directly. Implies Distributed. The
	// cluster is borrowed, not owned: Close leaves it running.
	Cluster *proc.Cluster
	// VerifyCache recomputes every cache hit and fails the query if the
	// cached bytes differ from the recomputation — the determinism
	// invariant checked at runtime. For tests and debugging; it defeats
	// the cache's purpose (hits pay a full execution).
	VerifyCache bool
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 4
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.QueueTimeout == 0 {
		o.QueueTimeout = 2 * time.Second
	}
	if o.MemoryBudget == 0 {
		o.MemoryBudget = 1 << 30
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats is a point-in-time snapshot of a server's counters.
type Stats struct {
	// Served counts successfully answered queries (hits included).
	Served uint64
	// CacheHits and CacheMisses split the served GROUP BY / window
	// queries by whether the result cache answered them.
	CacheHits   uint64
	CacheMisses uint64
	// RejectedBudget counts ErrOverBudget rejections, RejectedQueue
	// counts ErrOverloaded, RejectedTimeout counts ErrQueueTimeout.
	RejectedBudget  uint64
	RejectedQueue   uint64
	RejectedTimeout uint64
	// RejectedRecovering counts queries turned away (ErrOverloaded)
	// because the backing cluster was inside a recovery window —
	// replaying its journal or waiting for workers to re-attach. Cache
	// hits are still served through such a window.
	RejectedRecovering uint64
	// Inflight is the number of queries executing right now;
	// PeakInflight the highest concurrency the server has sustained.
	Inflight     int64
	PeakInflight int64
	// CacheEntries is the current result-cache population.
	CacheEntries int
}

// Server is a long-lived query server over one resident Dataset. It is
// safe for concurrent use: any number of goroutines may call Do at
// once; admission control bounds how many execute simultaneously.
type Server struct {
	ds  *Dataset
	opt Options

	slots  chan struct{} // execution-slot semaphore (cap MaxConcurrent)
	queued atomic.Int64  // queries waiting for a slot

	cache *resultCache

	// prof accumulates per-phase serving time across all queries — one
	// shared profiler, charged concurrently (engine.Profiler is
	// goroutine-safe).
	prof *engine.Profiler

	served, hits, misses          atomic.Uint64
	rejBudget, rejQueue, rejTimer atomic.Uint64
	rejRecover                    atomic.Uint64
	inflight, peakInflight        atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once

	// execGate, when non-nil, runs at the top of every admitted
	// execution — a test hook for holding queries in flight.
	execGate func()
}

// NewServer starts a server over ds. The dataset must outlive the
// server and stay unmutated.
func NewServer(ds *Dataset, opts Options) (*Server, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrDataset)
	}
	o := opts.withDefaults()
	if o.MaxConcurrent < 0 {
		return nil, fmt.Errorf("%w: MaxConcurrent %d", ErrDataset, o.MaxConcurrent)
	}
	if o.Dist.Procs != 0 {
		return nil, fmt.Errorf("%w: the serving layer spawns no cluster of its own (Dist.Procs); pass a Cluster handle instead", ErrDataset)
	}
	if o.Cluster != nil {
		o.Distributed = true
	}
	s := &Server{
		ds:     ds,
		opt:    o,
		slots:  make(chan struct{}, o.MaxConcurrent),
		prof:   engine.NewProfiler(),
		closed: make(chan struct{}),
	}
	if o.CacheEntries > 0 {
		s.cache = newResultCache(o.CacheEntries)
	}
	return s, nil
}

// Dataset returns the server's resident data.
func (s *Server) Dataset() *Dataset { return s.ds }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Served:             s.served.Load(),
		CacheHits:          s.hits.Load(),
		CacheMisses:        s.misses.Load(),
		RejectedBudget:     s.rejBudget.Load(),
		RejectedQueue:      s.rejQueue.Load(),
		RejectedTimeout:    s.rejTimer.Load(),
		RejectedRecovering: s.rejRecover.Load(),
		Inflight:           s.inflight.Load(),
		PeakInflight:       s.peakInflight.Load(),
	}
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
	}
	return st
}

// Profile returns the accumulated per-phase serving time, in
// first-use order.
func (s *Server) Profile() (labels []string, times []time.Duration) {
	labels = s.prof.Labels()
	times = make([]time.Duration, len(labels))
	for i, l := range labels {
		times[i] = s.prof.Get(l)
	}
	return labels, times
}

// Close shuts the server down: queued queries fail with
// ErrServerClosed, new queries are rejected. Idempotent. In-flight
// executions run to completion (their callers still hold slots).
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	return nil
}

// Do answers one query. The pipeline is: validate and canonically
// encode; price the query against the memory budget (ErrOverBudget);
// consult the result cache; admit (bounded slots, bounded queue with
// timeout — ErrOverloaded / ErrQueueTimeout); execute on the selected
// backend; cache and return the canonical result bytes.
//
// Cache hits are answered without taking an execution slot: a hit does
// no data work, so making it wait behind executing queries would only
// add latency. Budget pricing still runs first — whether a query is
// answerable is a property of the query, not of the cache's mood.
func (s *Server) Do(q Query) (*Result, error) {
	select {
	case <-s.closed:
		return nil, ErrServerClosed
	default:
	}

	if err := q.validate(s.ds.Cols()); err != nil {
		return nil, err
	}
	enc, err := q.Encode()
	if err != nil {
		return nil, err
	}

	if s.opt.MemoryBudget >= 0 {
		est, err := s.ds.EstimateBytes(q)
		if err != nil {
			return nil, err
		}
		if est > s.opt.MemoryBudget {
			s.rejBudget.Add(1)
			return nil, fmt.Errorf("%w: estimated %d bytes over budget %d (distinct-key bound %d)",
				ErrOverBudget, est, s.opt.MemoryBudget, s.ds.distinctBound)
		}
	}

	key := cacheKey(s.ds.version, enc)
	if s.cache != nil {
		if cached, ok := s.cache.get(key); ok {
			if s.opt.VerifyCache {
				fresh, err := s.admitAndExecute(q)
				if err != nil {
					return nil, err
				}
				if !bytes.Equal(cached, fresh) {
					return nil, fmt.Errorf("serve: cache hit diverged from recomputation for query %x — determinism invariant broken", enc)
				}
			}
			s.hits.Add(1)
			s.served.Add(1)
			return &Result{Query: q, Version: s.ds.version, Bytes: cached, CacheHit: true}, nil
		}
	}

	// Graceful degradation: while the backing cluster is inside a
	// recovery window (journal replay, workers re-attaching after a
	// supervisor restart) new cluster-bound work is turned away as
	// overloaded — retryable, the HTTP layer answers 503 + Retry-After —
	// rather than queued into a replacement timeout. Cache hits were
	// already served above; the gate lifts on its own once the previous
	// members have all re-attached. Recovering (not !Ready) is the
	// predicate on purpose: a cluster that is merely still forming for
	// the first time should queue normally, not shed.
	if q.Kind == QueryGroupBy && s.opt.Cluster != nil && s.opt.Cluster.Recovering() {
		s.rejRecover.Add(1)
		return nil, fmt.Errorf("%w: cluster recovering, workers re-attaching", ErrOverloaded)
	}

	out, err := s.admitAndExecute(q)
	if err != nil {
		if q.Kind == QueryGroupBy && s.opt.Cluster != nil && errors.Is(err, proc.ErrRecovering) {
			// The recovery window opened mid-flight: same retryable verdict.
			s.rejRecover.Add(1)
			return nil, fmt.Errorf("%w: %v", ErrOverloaded, err)
		}
		return nil, err
	}
	if s.cache != nil {
		s.cache.put(key, out)
		s.misses.Add(1)
	}
	s.served.Add(1)
	return &Result{Query: q, Version: s.ds.version, Bytes: out}, nil
}

// admitAndExecute runs the admission gate, then executes q on the
// configured backend and returns the canonical result bytes.
func (s *Server) admitAndExecute(q Query) ([]byte, error) {
	select {
	case s.slots <- struct{}{}:
		// Free slot: start immediately.
	default:
		// All slots busy: join the bounded wait queue.
		if s.queued.Add(1) > int64(s.opt.MaxQueue) {
			s.queued.Add(-1)
			s.rejQueue.Add(1)
			return nil, fmt.Errorf("%w: %d executing, %d queued", ErrOverloaded, s.opt.MaxConcurrent, s.opt.MaxQueue)
		}
		timer := time.NewTimer(s.opt.QueueTimeout)
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
			timer.Stop()
		case <-timer.C:
			s.queued.Add(-1)
			s.rejTimer.Add(1)
			return nil, fmt.Errorf("%w after %v", ErrQueueTimeout, s.opt.QueueTimeout)
		case <-s.closed:
			s.queued.Add(-1)
			timer.Stop()
			return nil, ErrServerClosed
		}
	}
	defer func() { <-s.slots }()

	cur := s.inflight.Add(1)
	for {
		peak := s.peakInflight.Load()
		if cur <= peak || s.peakInflight.CompareAndSwap(peak, cur) {
			break
		}
	}
	defer s.inflight.Add(-1)

	if s.execGate != nil {
		s.execGate()
	}
	return s.execute(q)
}

// execute runs q on the selected backend. Every path ends in the same
// canonical encoding, so backends are interchangeable bit for bit.
func (s *Server) execute(q Query) (out []byte, err error) {
	switch q.Kind {
	case QueryGroupBy:
		if s.opt.Cluster != nil {
			// The cluster's result payload already is the canonical
			// encoding every other backend produces — serve it as-is.
			var res *proc.Result
			s.prof.Measure("exec/groupby/proc", func() {
				res, err = s.opt.Cluster.Run(proc.Job{
					Workers: s.opt.Workers,
					Specs:   q.Specs,
					Source:  proc.RowShards(s.ds.shardKeys, s.ds.shardCols),
				})
			})
			if err != nil {
				return nil, fmt.Errorf("serve: group by: %w", err)
			}
			return res.Payload, nil
		}
		var gs []dist.TupleGroup
		if s.opt.Distributed {
			s.prof.Measure("exec/groupby/cluster", func() {
				gs, err = dist.AggregateTuplesConfig(s.ds.shardKeys, s.ds.shardCols, s.opt.Workers, q.Specs, s.opt.Dist)
			})
		} else {
			s.prof.Measure("exec/groupby/local", func() {
				gs, err = s.groupByLocal(q.Specs)
			})
		}
		if err != nil {
			return nil, fmt.Errorf("serve: group by: %w", err)
		}
		s.prof.Measure("encode/groups", func() {
			out = dist.EncodeTupleGroups(gs, len(q.Specs))
		})
		return out, nil
	case QueryWindowTotals:
		// Window totals run on the serving node for every backend: the
		// output is row-aligned, and its per-key totals come from the
		// same reproducible states, so the bits match regardless.
		s.prof.Measure("exec/window", func() {
			totals := sqlagg.WindowTotals(s.ds.keys, s.ds.cols[q.Col], resolvedLevels(q.Levels))
			out = encodeTotals(totals)
		})
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown query kind %d", ErrBadQuery, byte(q.Kind))
	}
}

// groupByLocal is the local GROUP BY engine: each resident partition is
// aggregated independently (keys only collide within their partition),
// a worker pool walks the partitions, and the per-partition group lists
// are concatenated and key-sorted. Group tables are sized from
// DistinctBound, so they never rehash mid-partition. The result bits
// are identical to the distributed plane's: the aggregate states are
// order-independent, so it does not matter which backend folded which
// row first.
func (s *Server) groupByLocal(specs []sqlagg.AggSpec) ([]dist.TupleGroup, error) {
	nparts := s.ds.part.NumPartitions()
	perPart := make([][]dist.TupleGroup, nparts)
	errs := make([]error, nparts)

	workers := s.opt.Workers
	if workers > nparts {
		workers = nparts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= nparts {
					return
				}
				perPart[p], errs[p] = s.aggPartition(p, specs)
			}
		}()
	}
	wg.Wait()

	total := 0
	for p := range perPart {
		if errs[p] != nil {
			return nil, errs[p]
		}
		total += len(perPart[p])
	}
	out := make([]dist.TupleGroup, 0, total)
	for p := range perPart {
		out = append(out, perPart[p]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// aggPartition folds one resident partition into finalized groups.
func (s *Server) aggPartition(p int, specs []sqlagg.AggSpec) ([]dist.TupleGroup, error) {
	pk, _ := s.ds.part.Partition(p)
	if len(pk) == 0 {
		return nil, nil
	}
	base := s.ds.part.Off[p]
	bound := s.ds.part.DistinctBound(p, uint32(s.ds.fanout))

	idx := make(map[uint32]int, bound)
	order := make([]uint32, 0, bound)
	tuples := make([][]sqlagg.AggState, 0, bound)
	for i, k := range pk {
		j, ok := idx[k]
		if !ok {
			sts, err := sqlagg.NewStates(specs)
			if err != nil {
				return nil, err
			}
			j = len(tuples)
			idx[k] = j
			order = append(order, k)
			tuples = append(tuples, sts)
		}
		row := base + i
		for si := range specs {
			tuples[j][si].Add(s.ds.pcols[specs[si].Col][row])
		}
	}

	gs := make([]dist.TupleGroup, len(tuples))
	for j := range tuples {
		aggs := make([]float64, len(specs))
		for si := range specs {
			aggs[si] = tuples[j][si].Value()
		}
		gs[j] = dist.TupleGroup{Key: order[j], Aggs: aggs}
	}
	return gs, nil
}

// cacheKey prefixes the canonical query encoding with the dataset
// version: a result is a pure function of exactly that pair.
func cacheKey(version uint64, enc []byte) string {
	k := make([]byte, 8+len(enc))
	for i := 0; i < 8; i++ {
		k[i] = byte(version >> (8 * i))
	}
	copy(k[8:], enc)
	return string(k)
}

// resultCache is a bounded map from (version, query) to canonical
// result bytes with FIFO eviction — recency tracking buys nothing when
// every entry is equally valid forever (the dataset is immutable;
// entries never go stale, they only compete for space).
type resultCache struct {
	mu    sync.Mutex
	max   int
	m     map[string][]byte
	order []string
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, m: make(map[string][]byte, max)}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *resultCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return // a concurrent miss already stored the identical bytes
	}
	if len(c.m) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.m[key] = val
	c.order = append(c.order, key)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
