package decimal

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestInt128AddMatchesBig(t *testing.T) {
	f := func(aHi, bHi int64, aLo, bLo uint64) bool {
		a := Int128{Hi: aHi, Lo: aLo}
		b := Int128{Hi: bHi, Lo: bLo}
		got := a.Add(b).Big()
		want := new(big.Int).Add(a.Big(), b.Big())
		// Wrap to 128 bits two's complement.
		want = wrap128(want)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestInt128SubNegMatchesBig(t *testing.T) {
	f := func(aHi, bHi int64, aLo, bLo uint64) bool {
		a := Int128{Hi: aHi, Lo: aLo}
		b := Int128{Hi: bHi, Lo: bLo}
		if a.Sub(b).Big().Cmp(wrap128(new(big.Int).Sub(a.Big(), b.Big()))) != 0 {
			return false
		}
		return a.Neg().Big().Cmp(wrap128(new(big.Int).Neg(a.Big()))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func wrap128(x *big.Int) *big.Int {
	mod := new(big.Int).Lsh(big.NewInt(1), 128)
	x = new(big.Int).Mod(x, mod)
	half := new(big.Int).Lsh(big.NewInt(1), 127)
	if x.Cmp(half) >= 0 {
		x.Sub(x, mod)
	}
	return x
}

func TestInt128AddInt64(t *testing.T) {
	f := func(hi int64, lo uint64, v int64) bool {
		x := Int128{Hi: hi, Lo: lo}
		got := x.AddInt64(v)
		want := x.Add(Int128FromInt64(v))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestInt128AddChecked(t *testing.T) {
	max := Int128{Hi: math.MaxInt64, Lo: math.MaxUint64}
	one := Int128FromInt64(1)
	if _, ov := max.AddChecked(one); !ov {
		t.Error("max+1 did not report overflow")
	}
	if r, ov := one.AddChecked(one); ov || r != Int128FromInt64(2) {
		t.Error("1+1 misbehaved")
	}
	min := Int128{Hi: math.MinInt64, Lo: 0}
	if _, ov := min.AddChecked(Int128FromInt64(-1)); !ov {
		t.Error("min−1 did not report overflow")
	}
	// Mixed signs never overflow.
	if _, ov := max.AddChecked(Int128FromInt64(-5)); ov {
		t.Error("mixed-sign add reported overflow")
	}
}

func TestInt128CmpSign(t *testing.T) {
	vals := []Int128{
		Int128FromInt64(-3), Int128FromInt64(0), Int128FromInt64(7),
		{Hi: 1, Lo: 0}, {Hi: -1, Lo: ^uint64(0)}, // = −1
		{Hi: math.MinInt64, Lo: 0},
	}
	for i, a := range vals {
		for j, b := range vals {
			want := a.Big().Cmp(b.Big())
			if got := a.Cmp(b); got != want {
				t.Errorf("Cmp(%v,%v) = %d, want %d (i=%d j=%d)", a, b, got, want, i, j)
			}
		}
		if a.Sign() != a.Big().Sign() {
			t.Errorf("Sign(%v) mismatch", a)
		}
	}
}

func TestInt128SummationAssociative(t *testing.T) {
	// Wrap-around integer addition is associative ⇒ reproducible.
	f := func(vs []int64, seed uint8) bool {
		sum1 := Int128{}
		for _, v := range vs {
			sum1 = sum1.AddInt64(v)
		}
		// Sum a rotated permutation.
		k := 0
		if len(vs) > 0 {
			k = int(seed) % len(vs)
		}
		sum2 := Int128{}
		for i := range vs {
			sum2 = sum2.AddInt64(vs[(i+k)%len(vs)])
		}
		return sum1 == sum2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInt128BigRoundtrip(t *testing.T) {
	f := func(hi int64, lo uint64) bool {
		x := Int128{Hi: hi, Lo: lo}
		y, ok := Int128FromBig(x.Big())
		return ok && x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
	if _, ok := Int128FromBig(new(big.Int).Lsh(big.NewInt(1), 127)); ok {
		t.Error("2^127 should not fit")
	}
}

func TestInt128Float64(t *testing.T) {
	if got := Int128FromInt64(1 << 40).Float64(); got != math.Ldexp(1, 40) {
		t.Errorf("Float64 = %g", got)
	}
	big128 := Int128{Hi: 1, Lo: 0} // 2^64
	if got := big128.Float64(); got != math.Ldexp(1, 64) {
		t.Errorf("Float64(2^64) = %g", got)
	}
}

func TestParseFormatDec18(t *testing.T) {
	cases := []struct {
		in    string
		scale int
		want  Dec18
	}{
		{"0", 2, 0},
		{"1", 2, 100},
		{"1.5", 2, 150},
		{"-1.55", 2, -155},
		{"123.45", 2, 12345},
		{"+0.01", 2, 1},
		{"42", 0, 42},
		{".5", 1, 5},
	}
	for _, c := range cases {
		got, err := ParseDec18(c.in, c.scale)
		if err != nil {
			t.Errorf("ParseDec18(%q,%d): %v", c.in, c.scale, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDec18(%q,%d) = %d, want %d", c.in, c.scale, got, c.want)
		}
	}
	if s := FormatDec18(12345, 2); s != "123.45" {
		t.Errorf("FormatDec18 = %q", s)
	}
	if s := FormatDec18(-155, 2); s != "-1.55" {
		t.Errorf("FormatDec18 = %q", s)
	}
	if s := FormatDec18(42, 0); s != "42" {
		t.Errorf("FormatDec18 = %q", s)
	}
	for _, bad := range []string{"", "-", "1.234", "12a", "1..2"} {
		if _, err := ParseDec18(bad, 2); err == nil {
			t.Errorf("ParseDec18(%q) accepted", bad)
		}
	}
}

func TestParseFormatRoundtrip(t *testing.T) {
	f := func(v int64) bool {
		d := Dec18(v % 1e15)
		s := FormatDec18(d, 3)
		back, err := ParseDec18(s, 3)
		return err == nil && back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecAddChecked(t *testing.T) {
	if _, ov := Dec18(math.MaxInt64).AddChecked(1); !ov {
		t.Error("Dec18 overflow not detected")
	}
	if r, ov := Dec18(5).AddChecked(-7); ov || r != -2 {
		t.Error("Dec18 5+(-7) misbehaved")
	}
	if _, ov := Dec9(math.MaxInt32).AddChecked(1); !ov {
		t.Error("Dec9 overflow not detected")
	}
}

func TestPow10(t *testing.T) {
	want := int64(1)
	for e := 0; e <= 18; e++ {
		if got := Pow10(e); got != want {
			t.Errorf("Pow10(%d) = %d, want %d", e, got, want)
		}
		if e < 18 {
			want *= 10
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Pow10(19) did not panic")
		}
	}()
	Pow10(19)
}
