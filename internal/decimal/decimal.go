package decimal

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// The DECIMAL(p) types of the paper's evaluation, implemented "the
// typical way" as built-in integers of 32, 64, and 128 bits for p = 9,
// 18, and 38 decimal digits. A value carries an implicit scale (number
// of fractional decimal digits) fixed by the column type — exactly the
// fixed-point arithmetic of Section II-C, which is reproducible but not
// flexible enough for data of unknown or mixed magnitude.

// Dec9 is DECIMAL(9): up to 9 decimal digits in an int32.
type Dec9 int32

// Dec18 is DECIMAL(18): up to 18 decimal digits in an int64.
type Dec18 int64

// Dec38 is DECIMAL(38): up to 38 decimal digits in an Int128.
type Dec38 = Int128

// Pow10 returns 10^e as an int64 for 0 ≤ e ≤ 18.
func Pow10(e int) int64 {
	if e < 0 || e > 18 {
		panic("decimal: Pow10 exponent out of range")
	}
	p := int64(1)
	for i := 0; i < e; i++ {
		p *= 10
	}
	return p
}

// ErrOverflow reports that a checked fixed-point operation overflowed
// its precision.
var ErrOverflow = errors.New("decimal: overflow")

// ParseDec18 parses a decimal literal like "-123.45" into a Dec18 with
// the given scale (count of fractional digits kept). Excess fractional
// digits are an error rather than being silently rounded: fixed-point
// columns in a database reject values that do not fit the declared type.
func ParseDec18(s string, scale int) (Dec18, error) {
	if scale < 0 || scale > 18 {
		return 0, fmt.Errorf("decimal: invalid scale %d", scale)
	}
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return 0, fmt.Errorf("decimal: empty literal %q", s)
	}
	if len(fracPart) > scale {
		return 0, fmt.Errorf("decimal: %q has more than %d fractional digits", s, scale)
	}
	var v int64
	for _, c := range intPart {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("decimal: bad digit in %q", s)
		}
		nv := v*10 + int64(c-'0')
		if nv < v {
			return 0, ErrOverflow
		}
		v = nv
	}
	for i := 0; i < scale; i++ {
		var d int64
		if i < len(fracPart) {
			c := fracPart[i]
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("decimal: bad digit in %q", s)
			}
			d = int64(c - '0')
		}
		nv := v*10 + d
		if nv < v {
			return 0, ErrOverflow
		}
		v = nv
	}
	if neg {
		v = -v
	}
	return Dec18(v), nil
}

// FormatDec18 renders v with the given scale, e.g. 12345 at scale 2 →
// "123.45".
func FormatDec18(v Dec18, scale int) string {
	neg := v < 0
	u := int64(v)
	if neg {
		u = -u
	}
	p := Pow10(scale)
	intPart, frac := u/p, u%p
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	fmt.Fprintf(&b, "%d", intPart)
	if scale > 0 {
		fmt.Fprintf(&b, ".%0*d", scale, frac)
	}
	return b.String()
}

// Float64 converts a scaled Dec18 to float64 (lossy).
func (v Dec18) Float64(scale int) float64 {
	return float64(v) / float64(Pow10(scale))
}

// Big returns the unscaled integer value.
func (v Dec18) Big() *big.Int { return new(big.Int).SetInt64(int64(v)) }

// AddChecked returns v + w, reporting overflow of the 64-bit range.
func (v Dec18) AddChecked(w Dec18) (Dec18, bool) {
	r := v + w
	overflow := (v < 0) == (w < 0) && (r < 0) != (v < 0)
	return r, overflow
}

// AddChecked returns v + w, reporting overflow of the 32-bit range.
func (v Dec9) AddChecked(w Dec9) (Dec9, bool) {
	r := v + w
	overflow := (v < 0) == (w < 0) && (r < 0) != (v < 0)
	return r, overflow
}
