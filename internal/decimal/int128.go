// Package decimal implements the fixed-point DECIMAL(p) data types the
// paper uses as reference points (Section VI-A): DECIMAL(9), DECIMAL(18),
// and DECIMAL(38), backed by 32-, 64-, and 128-bit integers respectively.
// Go has no built-in 128-bit integer (the paper uses GCC's __int128), so
// Int128 provides the two-word arithmetic.
//
// Integer summation is reproducible as long as overflow either cannot
// occur or wraps (two's complement addition is associative). The paper
// notes that *checked* overflow handling can cost up to 3×; both wrapping
// and checked variants are provided.
package decimal

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Int128 is a signed 128-bit integer in two's complement, Hi carrying
// the sign.
type Int128 struct {
	Hi int64
	Lo uint64
}

// Int128FromInt64 sign-extends v to 128 bits.
func Int128FromInt64(v int64) Int128 {
	hi := int64(0)
	if v < 0 {
		hi = -1
	}
	return Int128{Hi: hi, Lo: uint64(v)}
}

// Add returns x + y with wrap-around (two's complement), which keeps
// addition associative and therefore reproducible.
func (x Int128) Add(y Int128) Int128 {
	lo, carry := bits.Add64(x.Lo, y.Lo, 0)
	hi := uint64(x.Hi) + uint64(y.Hi) + carry
	return Int128{Hi: int64(hi), Lo: lo}
}

// AddChecked returns x + y and reports whether signed overflow occurred.
func (x Int128) AddChecked(y Int128) (Int128, bool) {
	r := x.Add(y)
	// Overflow iff operands share a sign that differs from the result's.
	overflow := (x.Hi < 0) == (y.Hi < 0) && (r.Hi < 0) != (x.Hi < 0)
	return r, overflow
}

// Sub returns x − y with wrap-around.
func (x Int128) Sub(y Int128) Int128 {
	lo, borrow := bits.Sub64(x.Lo, y.Lo, 0)
	hi := uint64(x.Hi) - uint64(y.Hi) - borrow
	return Int128{Hi: int64(hi), Lo: lo}
}

// Neg returns −x with wrap-around.
func (x Int128) Neg() Int128 {
	return Int128{}.Sub(x)
}

// AddInt64 returns x + v for a sign-extended 64-bit addend; this is the
// hot operation of DECIMAL(38) aggregation (wide accumulator, narrow
// values).
func (x Int128) AddInt64(v int64) Int128 {
	hi := int64(0)
	if v < 0 {
		hi = -1
	}
	lo, carry := bits.Add64(x.Lo, uint64(v), 0)
	return Int128{Hi: int64(uint64(x.Hi) + uint64(hi) + carry), Lo: lo}
}

// IsZero reports whether x is zero.
func (x Int128) IsZero() bool { return x.Hi == 0 && x.Lo == 0 }

// Sign returns −1, 0, or +1.
func (x Int128) Sign() int {
	if x.Hi < 0 {
		return -1
	}
	if x.Hi == 0 && x.Lo == 0 {
		return 0
	}
	return 1
}

// Cmp returns −1, 0, or +1 comparing x and y as signed integers.
func (x Int128) Cmp(y Int128) int {
	if x.Hi != y.Hi {
		if x.Hi < y.Hi {
			return -1
		}
		return 1
	}
	if x.Lo != y.Lo {
		if x.Lo < y.Lo {
			return -1
		}
		return 1
	}
	return 0
}

// Big returns x as a math/big integer (cold path: formatting, tests).
func (x Int128) Big() *big.Int {
	b := new(big.Int).SetInt64(x.Hi)
	b.Lsh(b, 64)
	return b.Add(b, new(big.Int).SetUint64(x.Lo))
}

// Int128FromBig converts b to an Int128, reporting false if it does not
// fit in 128 bits.
func Int128FromBig(b *big.Int) (Int128, bool) {
	if b.BitLen() > 127 {
		return Int128{}, false
	}
	abs := new(big.Int).Abs(b)
	lo := new(big.Int).And(abs, new(big.Int).SetUint64(^uint64(0))).Uint64()
	hi := new(big.Int).Rsh(abs, 64).Uint64()
	v := Int128{Hi: int64(hi), Lo: lo}
	if b.Sign() < 0 {
		v = v.Neg()
	}
	return v, true
}

// Float64 returns the nearest float64 to x.
func (x Int128) Float64() float64 {
	f, _ := new(big.Float).SetInt(x.Big()).Float64()
	return f
}

// String formats x in decimal.
func (x Int128) String() string { return x.Big().String() }

// Format implements fmt.Formatter-compatible default formatting via
// String; provided so %v and %d work naturally in messages.
func (x Int128) Format(f fmt.State, verb rune) {
	fmt.Fprintf(f, "%"+string(verb), x.Big())
}
