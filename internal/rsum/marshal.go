package rsum

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/floatbits"
)

// Binary encodings of summation states. A database engine needs to ship
// partial aggregates between operators, workers, and nodes; the encoding
// is canonical (the state is normalized by carry propagation first), so
// two states that represent the same multiset of inputs marshal to the
// same bytes regardless of how the inputs were distributed.

const (
	stateVersion  = 1
	kindState64   = 64
	kindState32   = 32
	headerSize    = 1 + 1 + 1 + 1 + 4 + 4 + 4 + 4 // version, kind, levels, flags, nan, posInf, negInf, eTop
	flagInit      = 1
	levelSize64   = 8 + 8
	levelSize32   = 4 + 8
	marshalSize64 = headerSize + MaxLevels*levelSize64
)

// EncodedSize returns the exact byte length of the state's canonical
// encoding (the length MarshalBinary and AppendBinary produce). It is a
// pure function of the level count, so senders can pre-size frame
// buffers without encoding twice.
func (s *State64) EncodedSize() int { return headerSize + int(s.levels)*levelSize64 }

// EncodedSize returns the exact byte length of the state's canonical
// encoding; see State64.EncodedSize.
func (s *State32) EncodedSize() int { return headerSize + int(s.levels)*levelSize32 }

// AppendBinary implements encoding.BinaryAppender: it appends the
// canonical encoding of s to dst and returns the extended slice. The
// bytes are identical to MarshalBinary's, but when dst has sufficient
// capacity no allocation occurs — this is the hot-path encoder of the
// distributed shuffle, where per-key partial states encode directly
// into the destination frame buffer instead of marshal-then-copy.
func (s *State64) AppendBinary(dst []byte) ([]byte, error) {
	t := *s
	if t.init {
		t.propagate()
	}
	need := headerSize + int(t.levels)*levelSize64
	off := len(dst)
	dst = append(dst, make([]byte, need)...) // recognized append+make: grows in place, no temp slice
	buf := dst[off : off+need]
	buf[0] = stateVersion
	buf[1] = kindState64
	buf[2] = byte(t.levels)
	if t.init {
		buf[3] = flagInit
	}
	binary.LittleEndian.PutUint32(buf[4:], t.nan)
	binary.LittleEndian.PutUint32(buf[8:], t.posInf)
	binary.LittleEndian.PutUint32(buf[12:], t.negInf)
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.eTop))
	o := headerSize
	for l := 0; l < int(t.levels); l++ {
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(t.s[l]))
		binary.LittleEndian.PutUint64(buf[o+8:], uint64(t.c[l]))
		o += levelSize64
	}
	return dst, nil
}

// AppendBinary implements encoding.BinaryAppender; see State64.
func (s *State32) AppendBinary(dst []byte) ([]byte, error) {
	t := *s
	if t.init {
		t.propagate()
	}
	need := headerSize + int(t.levels)*levelSize32
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	buf := dst[off : off+need]
	buf[0] = stateVersion
	buf[1] = kindState32
	buf[2] = byte(t.levels)
	if t.init {
		buf[3] = flagInit
	}
	binary.LittleEndian.PutUint32(buf[4:], t.nan)
	binary.LittleEndian.PutUint32(buf[8:], t.posInf)
	binary.LittleEndian.PutUint32(buf[12:], t.negInf)
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.eTop))
	o := headerSize
	for l := 0; l < int(t.levels); l++ {
		binary.LittleEndian.PutUint32(buf[o:], math.Float32bits(t.s[l]))
		binary.LittleEndian.PutUint64(buf[o+4:], uint64(t.c[l]))
		o += levelSize32
	}
	return dst, nil
}

var errCorrupt = errors.New("rsum: corrupt state encoding")

// EncodedLen64 returns the total byte length of the State64 encoding
// that starts at data[0], validating the version/kind/level prefix. It
// lets composite aggregate encodings (a tuple of states, a state
// followed by a row count) find the boundary of an embedded state
// without decoding it.
func EncodedLen64(data []byte) (int, error) {
	if len(data) < headerSize {
		return 0, errCorrupt
	}
	if data[0] != stateVersion {
		return 0, fmt.Errorf("rsum: unsupported state version %d", data[0])
	}
	if data[1] != kindState64 {
		return 0, fmt.Errorf("rsum: expected State64 encoding, got kind %d", data[1])
	}
	levels := int(data[2])
	if levels < 1 || levels > MaxLevels {
		return 0, errCorrupt
	}
	return headerSize + levels*levelSize64, nil
}

// MarshalBinary implements encoding.BinaryMarshaler. The encoding is
// canonical: states that Equal() each other marshal identically.
func (s *State64) MarshalBinary() ([]byte, error) {
	t := *s
	if t.init {
		t.propagate()
	}
	buf := make([]byte, headerSize+int(t.levels)*levelSize64)
	buf[0] = stateVersion
	buf[1] = kindState64
	buf[2] = byte(t.levels)
	if t.init {
		buf[3] = flagInit
	}
	binary.LittleEndian.PutUint32(buf[4:], t.nan)
	binary.LittleEndian.PutUint32(buf[8:], t.posInf)
	binary.LittleEndian.PutUint32(buf[12:], t.negInf)
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.eTop))
	off := headerSize
	for l := 0; l < int(t.levels); l++ {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(t.s[l]))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(t.c[l]))
		off += levelSize64
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *State64) UnmarshalBinary(data []byte) error {
	if len(data) < headerSize {
		return errCorrupt
	}
	if data[0] != stateVersion {
		return fmt.Errorf("rsum: unsupported state version %d", data[0])
	}
	if data[1] != kindState64 {
		return fmt.Errorf("rsum: expected State64 encoding, got kind %d", data[1])
	}
	levels := int(data[2])
	if levels < 1 || levels > MaxLevels {
		return errCorrupt
	}
	if len(data) != headerSize+levels*levelSize64 {
		return errCorrupt
	}
	if data[3]&^flagInit != 0 {
		return errCorrupt // unknown flag bits: encoding is canonical
	}
	var t State64
	t.levels = int8(levels)
	t.init = data[3]&flagInit != 0
	t.nan = binary.LittleEndian.Uint32(data[4:])
	t.posInf = binary.LittleEndian.Uint32(data[8:])
	t.negInf = binary.LittleEndian.Uint32(data[12:])
	t.eTop = int32(binary.LittleEndian.Uint32(data[16:]))
	off := headerSize
	for l := 0; l < levels; l++ {
		t.s[l] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		t.c[l] = int64(binary.LittleEndian.Uint64(data[off+8:]))
		off += levelSize64
	}
	if err := t.validate(); err != nil {
		return err
	}
	*s = t
	return nil
}

// MergeBinary decodes a canonical State64 encoding and merges it into s.
// It is the wire-facing counterpart of Merge for systems that ship
// partial aggregates between processes: the sender marshals its state,
// the receiver folds the bytes straight into its own accumulator.
// Unlike Merge, a level-count mismatch is reported as an error rather
// than a panic, since the encoding crosses a trust boundary.
func (s *State64) MergeBinary(data []byte) error {
	var o State64
	if err := o.UnmarshalBinary(data); err != nil {
		return err
	}
	if o.levels != s.levels {
		return fmt.Errorf("rsum: cannot merge L=%d encoding into L=%d state", o.levels, s.levels)
	}
	s.Merge(&o)
	return nil
}

// validate rejects decoded states that violate the structural
// invariants; accepting them would let corrupt (or adversarial) bytes
// break the exactness arguments or panic later operations.
func (t *State64) validate() error {
	if !t.init {
		if t.eTop != 0 {
			return errCorrupt
		}
		return nil
	}
	e := int(t.eTop)
	if e%floatbits.W64 != 0 || e < floatbits.MinLevelExp64 || e > floatbits.MaxLevelExp64 {
		return errCorrupt
	}
	for l := 0; l < int(t.levels); l++ {
		le := t.levelExp(l)
		if le < LowestLevelExp64 {
			if t.s[l] != 0 || t.c[l] != 0 {
				return errCorrupt // dead levels must be empty
			}
			continue
		}
		ufp := floatbits.Pow2_64(le)
		// Canonical (propagated) running sums sit in the carry-free
		// window [1.5, 1.75)·ufp, so decoding then re-encoding is a
		// byte-level fixpoint.
		if !(t.s[l] >= 1.5*ufp && t.s[l] < 1.75*ufp) {
			return errCorrupt
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler; see State64.
func (s *State32) MarshalBinary() ([]byte, error) {
	t := *s
	if t.init {
		t.propagate()
	}
	buf := make([]byte, headerSize+int(t.levels)*levelSize32)
	buf[0] = stateVersion
	buf[1] = kindState32
	buf[2] = byte(t.levels)
	if t.init {
		buf[3] = flagInit
	}
	binary.LittleEndian.PutUint32(buf[4:], t.nan)
	binary.LittleEndian.PutUint32(buf[8:], t.posInf)
	binary.LittleEndian.PutUint32(buf[12:], t.negInf)
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.eTop))
	off := headerSize
	for l := 0; l < int(t.levels); l++ {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(t.s[l]))
		binary.LittleEndian.PutUint64(buf[off+4:], uint64(t.c[l]))
		off += levelSize32
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *State32) UnmarshalBinary(data []byte) error {
	if len(data) < headerSize {
		return errCorrupt
	}
	if data[0] != stateVersion {
		return fmt.Errorf("rsum: unsupported state version %d", data[0])
	}
	if data[1] != kindState32 {
		return fmt.Errorf("rsum: expected State32 encoding, got kind %d", data[1])
	}
	levels := int(data[2])
	if levels < 1 || levels > MaxLevels {
		return errCorrupt
	}
	if len(data) != headerSize+levels*levelSize32 {
		return errCorrupt
	}
	if data[3]&^flagInit != 0 {
		return errCorrupt // unknown flag bits: encoding is canonical
	}
	var t State32
	t.levels = int8(levels)
	t.init = data[3]&flagInit != 0
	t.nan = binary.LittleEndian.Uint32(data[4:])
	t.posInf = binary.LittleEndian.Uint32(data[8:])
	t.negInf = binary.LittleEndian.Uint32(data[12:])
	t.eTop = int32(binary.LittleEndian.Uint32(data[16:]))
	off := headerSize
	for l := 0; l < levels; l++ {
		t.s[l] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		t.c[l] = int64(binary.LittleEndian.Uint64(data[off+4:]))
		off += levelSize32
	}
	if err := t.validate(); err != nil {
		return err
	}
	*s = t
	return nil
}

// validate mirrors State64.validate for single precision.
func (t *State32) validate() error {
	if !t.init {
		if t.eTop != 0 {
			return errCorrupt
		}
		return nil
	}
	e := int(t.eTop)
	if e%floatbits.W32 != 0 || e < floatbits.MinLevelExp32 || e > floatbits.MaxLevelExp32 {
		return errCorrupt
	}
	for l := 0; l < int(t.levels); l++ {
		le := t.levelExp(l)
		if le < LowestLevelExp32 {
			if t.s[l] != 0 || t.c[l] != 0 {
				return errCorrupt
			}
			continue
		}
		ufp := floatbits.Pow2_32(le)
		if !(t.s[l] >= 1.5*ufp && t.s[l] < 1.75*ufp) {
			return errCorrupt
		}
	}
	return nil
}
