package rsum

import (
	"math"

	"repro/internal/floatbits"
)

// V is the number of accumulator lanes of the vectorized kernel,
// matching the paper's V = 4 (double-precision values on AVX).
// Go has no stdlib SIMD intrinsics, so the lanes are realized as four
// independent dependency chains that superscalar hardware executes in
// parallel; the algorithmic structure (per-lane state, tiling, the
// horizontal reduction of Eq. 2–3) is exactly Algorithm 3.
const V = 4

// AddSliceVec absorbs a slice of values using the vectorized summation
// kernel (RSUM SIMD, Algorithm 3). It produces the same bits as Add and
// AddSlice applied to any permutation of the same values.
//
// Per call, the kernel expands the state into V lanes and horizontally
// reduces them back at the end — the V× larger per-call state the paper
// measures as start-up overhead for small chunks (Figure 6).
func (s *State64) AddSliceVec(bs []float64) {
	if len(bs) == 0 {
		return
	}

	var lanes [MaxLevels][V]float64
	var carries [MaxLevels][V]int64
	loaded := false
	L := int(s.levels)

	load := func() {
		for l := 0; l < L; l++ {
			fresh := s.freshLevel(l)
			lanes[l][0] = s.s[l]
			carries[l][0] = s.c[l]
			for v := 1; v < V; v++ {
				lanes[l][v] = fresh
				carries[l][v] = 0
			}
		}
		loaded = true
	}

	// propagateLanes renormalizes every live lane of every level.
	propagateLanes := func() {
		for l := 0; l < L; l++ {
			e := s.levelExp(l)
			if e < LowestLevelExp64 {
				break
			}
			ufp := floatbits.Pow2_64(e)
			anchor := 1.5 * ufp
			quarter := 0.25 * ufp
			for v := 0; v < V; v++ {
				delta := lanes[l][v] - anchor
				d := math.Floor(delta / quarter)
				if d != 0 {
					lanes[l][v] -= d * quarter
					carries[l][v] += int64(d)
				}
			}
		}
	}

	// raiseLanes shifts the lane arrays when the top level rises,
	// mirroring State64.raise for the expanded representation.
	raiseLanes := func(eNeed int) {
		shift := (eNeed - int(s.eTop)) / floatbits.W64
		s.eTop = int32(eNeed)
		for l := L - 1; l >= 0; l-- {
			if l >= shift {
				lanes[l] = lanes[l-shift]
				carries[l] = carries[l-shift]
			} else {
				fresh := s.freshLevel(l)
				for v := 0; v < V; v++ {
					lanes[l][v] = fresh
					carries[l][v] = 0
				}
			}
		}
	}

	steps := int32(0) // per-lane extractions since the last propagation

	input := bs
	for len(input) > 0 {
		n := len(input)
		if n > V*(floatbits.NB64-1) {
			n = V * (floatbits.NB64 - 1)
		}
		tile := input[:n]
		input = input[n:]

		maxExp, ok := chunkMaxExp64(tile)
		if !ok {
			// Specials in the tile: collapse lanes and take the slow path.
			if loaded {
				s.storeLanes(&lanes, &carries)
				loaded = false
			}
			for _, b := range tile {
				s.Add(b)
			}
			continue
		}
		if maxExp == minInt {
			continue // all zeros
		}
		if !s.init {
			s.raise(maxExp)
		}
		if !loaded {
			load()
		}
		if maxExp >= int(s.eTop)-floatbits.MantBits64+floatbits.W64-1 {
			raiseLanes(floatbits.TopLevelExp64(maxExp))
		}
		// +1 covers the ≤ V−1 tail values of the final tile, which are
		// spread round-robin over the lanes (≤ 1 extra extraction each).
		if steps+int32((n+V-1)/V)+1 > floatbits.NB64 {
			propagateLanes()
			steps = 0
		}

		i := 0
		for ; i+V <= n; i += V {
			r0, r1, r2, r3 := tile[i], tile[i+1], tile[i+2], tile[i+3]
			for l := 0; l < L; l++ {
				e := s.levelExp(l)
				if e < LowestLevelExp64 {
					break
				}
				ext := floatbits.Extractor64(e)
				q0 := (r0 + ext) - ext
				q1 := (r1 + ext) - ext
				q2 := (r2 + ext) - ext
				q3 := (r3 + ext) - ext
				lanes[l][0] += q0
				lanes[l][1] += q1
				lanes[l][2] += q2
				lanes[l][3] += q3
				r0 -= q0
				r1 -= q1
				r2 -= q2
				r3 -= q3
			}
		}
		// Tail of the tile: scalar extraction, spread round-robin over
		// the lanes so no lane exceeds its carry-propagation budget.
		for lane := 0; i < n; i, lane = i+1, lane+1 {
			b := tile[i]
			if b == 0 {
				continue
			}
			r := b
			for l := 0; l < L; l++ {
				e := s.levelExp(l)
				if e < LowestLevelExp64 {
					break
				}
				ext := floatbits.Extractor64(e)
				q := (r + ext) - ext
				lanes[l][lane%V] += q
				r -= q
				if r == 0 {
					break
				}
			}
		}
		steps += int32((n + V - 1) / V)
	}

	if loaded {
		propagateLanes()
		s.storeLanes(&lanes, &carries)
	}
}

// storeLanes performs the horizontal summation of Eq. 2–3: the per-lane
// net values (all in [0, 0.25)·ufp after propagation) are folded into
// lane 0 with exact arithmetic, spilling quarters into the carry
// counter, and the result becomes the state's running sums.
func (s *State64) storeLanes(lanes *[MaxLevels][V]float64, carries *[MaxLevels][V]int64) {
	L := int(s.levels)
	for l := 0; l < L; l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp64 {
			s.s[l] = 0
			s.c[l] = 0
			continue
		}
		ufp := floatbits.Pow2_64(e)
		anchor := 1.5 * ufp
		quarter := 0.25 * ufp
		sum := lanes[l][0]
		carry := carries[l][0]
		for v := 1; v < V; v++ {
			net := lanes[l][v] - anchor // exact, ∈ [0, 0.25)·ufp after propagation
			sum += net                  // exact: sum < 2·ufp
			if sum-anchor >= quarter {  // renormalize to [1.5, 1.75)·ufp
				sum -= quarter
				carry++
			}
			carry += carries[l][v]
		}
		s.s[l] = sum
		s.c[l] = carry
	}
	s.nAdds = 0
}
