package rsum

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"repro/internal/floatbits"
)

// Stress tests targeting the exactness boundaries of the algorithm:
// carry-propagation saturation, level-shift thresholds, extraction tie
// cases, and catastrophic cancellation.

// TestCarrySaturation drives a single level to its drift limit over and
// over: NB identical maximal contributions per propagation window.
func TestCarrySaturation(t *testing.T) {
	s := NewState64(2)
	// Anchor the state so eTop = 40 (values near 1).
	s.Add(1.0)
	// The largest value that does not force a raise has exponent
	// eTop − m + W − 2.
	e := int(s.eTop) - floatbits.MantBits64 + floatbits.W64 - 2
	big := math.Ldexp(1.9999999, e)
	exact := 1.0
	for i := 0; i < 10*floatbits.NB64; i++ {
		s.Add(big)
		exact += big
	}
	if got := s.Value(); math.Abs(got-exact) > math.Abs(exact)*1e-12 {
		t.Errorf("saturation sum: %v vs %v", got, exact)
	}
	// Same with alternating signs (drift in both directions).
	s2 := NewState64(2)
	s2.Add(1.0)
	for i := 0; i < 10*floatbits.NB64; i++ {
		if i%2 == 0 {
			s2.Add(big)
		} else {
			s2.Add(-big)
		}
	}
	if got := s2.Value(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("alternating saturation: %v, want 1", got)
	}
}

// TestRepeatedRaises feeds values with strictly increasing exponents so
// every add forces a level shift.
func TestRepeatedRaises(t *testing.T) {
	var xs []float64
	for e := -200; e <= 200; e += 11 {
		xs = append(xs, math.Ldexp(1.5, e))
	}
	ref := NewState64(3)
	for _, x := range xs {
		ref.Add(x)
	}
	// Descending order produces exactly one raise; the states must match.
	desc := NewState64(3)
	for i := len(xs) - 1; i >= 0; i-- {
		desc.Add(xs[i])
	}
	if !ref.Equal(&desc) {
		t.Error("raise order changed the state")
	}
	// The sum is dominated by the largest term; L=3 spans 120 bits so
	// the top terms are represented exactly.
	want := 0.0
	for _, x := range xs {
		want += x
	}
	if got := ref.Value(); math.Abs(got-want) > want*1e-12 {
		t.Errorf("raise sum %v vs %v", got, want)
	}
}

// TestExtractionTies feeds values whose remainder at level 1 is exactly
// half an ulp — the round-to-nearest-even tie case that motivates fixed
// extractors (DESIGN.md §2). Any order must produce the same bits.
func TestExtractionTies(t *testing.T) {
	s := NewState64(2)
	s.Add(1.0) // eTop = 40, ulp(E1) = 2^-12
	halfUlp := math.Ldexp(1, -13)
	xs := []float64{
		1 + 3*halfUlp, 1 + 5*halfUlp, 1 - 3*halfUlp, halfUlp, -halfUlp,
		3 * halfUlp, 5 * halfUlp, 7 * halfUlp,
	}
	ref := NewState64(2)
	for _, x := range xs {
		ref.Add(x)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		perm := rng.Perm(len(xs))
		s := NewState64(2)
		for _, i := range perm {
			s.Add(xs[i])
		}
		if !s.Equal(&ref) {
			t.Fatalf("tie-case permutation %d changed the state", trial)
		}
	}
}

// TestMassiveCancellation sums pairs that cancel to a tiny residual;
// the residual must be identical for any order and, with L=3, exact.
func TestMassiveCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs []float64
	residual := 0.0
	for i := 0; i < 1000; i++ {
		big := math.Ldexp(1+rng.Float64(), 60)
		tiny := math.Ldexp(1+rng.Float64(), -40)
		xs = append(xs, big, -big, tiny)
		residual += tiny
	}
	s := NewState64(3)
	s.AddSlice(xs)
	got := s.Value()
	// Eq. 6: the error is bounded relative to max|b| (the big cancelled
	// terms), not the residual: n · 2^((1−L)·W−1) · max|b|.
	bound := float64(len(xs)) * math.Ldexp(1, (1-3)*floatbits.W64-1) * math.Ldexp(1, 61)
	if math.Abs(got-residual) > bound {
		t.Errorf("cancellation residual %v vs %v (bound %g)", got, residual, bound)
	}
	// Permutation invariance under cancellation.
	perm := rng.Perm(len(xs))
	s2 := NewState64(3)
	for _, i := range perm {
		s2.Add(xs[i])
	}
	if math.Float64bits(s2.Value()) != math.Float64bits(got) {
		t.Error("cancellation order changed the bits")
	}
}

// TestManyMerges exercises deep merge chains (10k partial states).
func TestManyMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	total := NewState64(2)
	ref := NewState64(2)
	for i := 0; i < 10000; i++ {
		x := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(60)-30)
		part := NewState64(2)
		part.Add(x)
		total.Merge(&part)
		ref.Add(x)
	}
	if !total.Equal(&ref) {
		t.Error("10k-way merge differs from sequential")
	}
}

// TestDenseBoundarySweep adds powers of two straddling every level
// boundary of the grid — each is exactly representable, so with enough
// levels the result must be exact.
func TestDenseBoundarySweep(t *testing.T) {
	var xs []float64
	for e := -80; e <= 80; e++ {
		xs = append(xs, math.Ldexp(1, e))
	}
	s := NewState64(6)
	s.AddSlice(xs)
	want := 0.0
	for _, x := range xs {
		want += x
	}
	// The sum of powers of two 2^-80..2^80 ≈ 2^81; float64 rounds it,
	// but L=6 spans 240 bits so the reproducible sum must round the
	// exact value — compare against the analytically exact sum.
	// Σ_{e=-80}^{80} 2^e = 2^81 − 2^-80.
	exact := math.Ldexp(1, 81) - math.Ldexp(1, -80)
	if got := s.Value(); got != exact {
		t.Errorf("boundary sweep: %v, want %v (naive: %v)", got, exact, want)
	}
}

// TestStateSize documents the accumulator footprint the paper's memory
// layout (Figure 5) depends on: the state must stay a small value type
// so it can live directly in hash-table payload arrays.
func TestStateSize(t *testing.T) {
	var s64 State64
	var s32 State32
	if size := unsafe.Sizeof(s64); size > 128 {
		t.Errorf("State64 is %d bytes; hash-table payloads should stay compact", size)
	}
	if size := unsafe.Sizeof(s32); size > 128 {
		t.Errorf("State32 is %d bytes", size)
	}
}
