package rsum

import (
	"encoding/binary"
	"math"
	"testing"
)

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz`
// explores further. Each target checks the core metamorphic properties
// on arbitrary bit patterns, including NaNs, infinities, subnormals,
// and near-overflow values.

func bytesToFloats(data []byte) []float64 {
	xs := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return xs
}

func addFuzzSeeds(f *testing.F) {
	f.Helper()
	seed := func(vals ...float64) {
		buf := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		f.Add(buf, uint8(3))
	}
	seed(1, 2, 3)
	seed(2.5e-16, 0.999999999999999, 2.5e-16)
	seed(math.NaN(), 1, math.Inf(1))
	seed(math.Inf(1), math.Inf(-1))
	seed(0x1p990, -0x1p990, 1)
	seed(math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64)
	seed(1e300, -1e300, 1e-300, 42)
	seed(0, math.Copysign(0, -1), 0)
}

// FuzzPermutationInvariance: rotating the input must not change the
// normalized state or the finalized bits.
func FuzzPermutationInvariance(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, rot uint8) {
		xs := bytesToFloats(data)
		if len(xs) == 0 {
			return
		}
		k := int(rot) % len(xs)
		a := NewState64(2)
		for _, x := range xs {
			a.Add(x)
		}
		b := NewState64(2)
		for i := range xs {
			b.Add(xs[(i+k)%len(xs)])
		}
		if !a.Equal(&b) {
			t.Fatalf("rotation by %d changed the state for %v", k, xs)
		}
		va, vb := a.Value(), b.Value()
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Fatalf("rotation changed value: %v vs %v", va, vb)
		}
	})
}

// FuzzKernelConsistency: Add, AddEager, AddSlice, AddSliceVec, and a
// split+Merge must all produce the same normalized state.
func FuzzKernelConsistency(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, cut uint8) {
		xs := bytesToFloats(data)
		if len(xs) == 0 {
			return
		}
		ref := NewState64(2)
		for _, x := range xs {
			ref.Add(x)
		}
		eager := NewState64(2)
		for _, x := range xs {
			eager.AddEager(x)
		}
		if !ref.Equal(&eager) {
			t.Fatal("AddEager differs")
		}
		sl := NewState64(2)
		sl.AddSlice(xs)
		if !ref.Equal(&sl) {
			t.Fatal("AddSlice differs")
		}
		vec := NewState64(2)
		vec.AddSliceVec(xs)
		if !ref.Equal(&vec) {
			t.Fatal("AddSliceVec differs")
		}
		k := int(cut) % len(xs)
		left := NewState64(2)
		left.AddSlice(xs[:k])
		right := NewState64(2)
		right.AddSliceVec(xs[k:])
		left.Merge(&right)
		if !ref.Equal(&left) {
			t.Fatal("split+Merge differs")
		}
	})
}

// FuzzMarshalRoundtrip: marshal/unmarshal must preserve the state, and
// the canonical encoding must be stable.
func FuzzMarshalRoundtrip(f *testing.F) {
	addFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, levels uint8) {
		l := int(levels)%MaxLevels + 1
		xs := bytesToFloats(data)
		s := NewState64(l)
		s.AddSlice(xs)
		enc, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var r State64
		if err := r.UnmarshalBinary(enc); err != nil {
			t.Fatal(err)
		}
		if !r.Equal(&s) {
			t.Fatal("roundtrip state differs")
		}
		enc2, _ := r.MarshalBinary()
		if string(enc) != string(enc2) {
			t.Fatal("canonical encoding unstable")
		}
	})
}

// FuzzState64UnmarshalBinary: malformed or truncated wire bytes must
// always return an error — never panic, never yield a state that later
// panics, and never corrupt an accumulator they are merged into. The
// seed corpus is built from valid marshaled states (empty, finite,
// denormal, special-value, and multi-level ones) plus single bit flips
// and truncations, mirroring line corruption of real partial-state
// frames.
func FuzzState64UnmarshalBinary(f *testing.F) {
	var encs [][]byte
	marshal := func(levels int, vals ...float64) {
		s := NewState64(levels)
		for _, v := range vals {
			s.Add(v)
		}
		enc, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		encs = append(encs, enc)
	}
	marshal(2)
	marshal(1, 1.5)
	marshal(2, 1e300, -1e300, 0x1p-1040)
	marshal(3, math.Inf(1), 42)
	marshal(4, math.NaN(), math.Inf(-1))
	marshal(MaxLevels, 1e-308, math.SmallestNonzeroFloat64)
	for _, enc := range encs {
		f.Add(enc)
		for bit := 0; bit < 8*len(enc); bit += 7 {
			mut := append([]byte(nil), enc...)
			mut[bit/8] ^= 1 << (bit % 8)
			f.Add(mut)
		}
		f.Add(enc[:len(enc)/2])
		f.Add(enc[:len(enc)-1])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var s State64
		if err := s.UnmarshalBinary(data); err == nil {
			// Accepted: the state must be fully usable and canonical.
			s.Add(1)
			_ = s.Value()
			enc, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("accepted state failed to re-marshal: %v", err)
			}
			var r State64
			if err := r.UnmarshalBinary(enc); err != nil {
				t.Fatalf("re-marshaled state rejected: %v", err)
			}
		} else if !s.IsEmpty() || s.Levels() != 0 {
			t.Fatal("failed UnmarshalBinary left residue in the receiver")
		}

		// The wire-facing merge path: a failure must leave the live
		// accumulator untouched, a success must leave it usable.
		acc := NewState64(2)
		acc.AddSlice([]float64{1e16, 1, -1e16, 0x1p-1000})
		before := acc
		if err := acc.MergeBinary(data); err != nil {
			if !acc.Equal(&before) {
				t.Fatal("failed MergeBinary corrupted the accumulator")
			}
			if math.Float64bits(acc.Value()) != math.Float64bits(before.Value()) {
				t.Fatal("failed MergeBinary changed the accumulator's value bits")
			}
		} else {
			acc.Add(2.5)
			_ = acc.Value()
		}
	})
}

// FuzzUnmarshalRobustness: arbitrary bytes must never panic the decoder.
func FuzzUnmarshalRobustness(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 64, 2, 1, 0, 0, 0, 0})
	good, _ := func() ([]byte, error) { s := NewState64(2); s.Add(1); return s.MarshalBinary() }()
	f.Add(good)
	f.Fuzz(func(t *testing.T, data []byte) {
		var s State64
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected, fine
		}
		// Accepted: state must be usable.
		s.Add(1)
		_ = s.Value()
	})
}
