package rsum

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floatbits"
)

// exactSum computes the mathematically exact sum of the inputs using
// arbitrary-precision arithmetic and returns it as a big.Float with
// enough precision to be treated as exact.
func exactSum(xs []float64) *big.Float {
	acc := new(big.Float).SetPrec(2100)
	for _, x := range xs {
		acc.Add(acc, new(big.Float).SetPrec(2100).SetFloat64(x))
	}
	return acc
}

// randVals returns n values drawn from a few interesting distributions.
func randVals(rng *rand.Rand, n int, kind int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch kind {
		case 0: // uniform [1, 2)
			xs[i] = 1 + rng.Float64()
		case 1: // exponential λ=1
			xs[i] = rng.ExpFloat64()
		case 2: // mixed signs, wide range
			xs[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(80)-40)
		default: // adversarial cancellation
			if i%2 == 0 {
				xs[i] = math.Ldexp(1+rng.Float64(), 30)
			} else {
				xs[i] = -xs[i-1] * (1 - 1e-14)
			}
		}
	}
	return xs
}

func TestEmptyState(t *testing.T) {
	s := NewState64(2)
	if !s.IsEmpty() {
		t.Error("new state not empty")
	}
	if v := s.Value(); v != 0 || math.Signbit(v) {
		t.Errorf("empty state Value() = %v, want +0", v)
	}
	if s.Levels() != 2 {
		t.Errorf("Levels() = %d", s.Levels())
	}
}

func TestLevelsValidation(t *testing.T) {
	for _, bad := range []int{0, -1, MaxLevels + 1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewState64(%d) did not panic", bad)
				}
			}()
			NewState64(bad)
		}()
	}
	for l := 1; l <= MaxLevels; l++ {
		s := NewState64(l)
		s.Add(1.0)
		if v := s.Value(); v != 1.0 {
			t.Errorf("L=%d: sum of {1} = %v", l, v)
		}
	}
}

func TestSingleValueIdentity(t *testing.T) {
	// A single value must come back exactly for L ≥ 2 (one level can
	// already be lossy by design for values spanning more than W bits).
	f := func(x float64) bool {
		if x != x || math.IsInf(x, 0) || math.Abs(x) >= 0x1p987 ||
			(x != 0 && math.Abs(x) < 0x1p-900) {
			return true
		}
		s := NewState64(3)
		s.Add(x)
		return s.Value() == x || (x == 0 && s.Value() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestPaperAlgorithm1Example(t *testing.T) {
	// The non-reproducible query of Algorithm 1 in the paper: the same
	// three values summed in two different physical orders.
	a, b, c := 2.5e-16, 0.999999999999999, 2.5e-16
	conv1 := (a + b) + c
	conv2 := (a + c) + b
	if conv1 == conv2 {
		t.Fatal("test premise broken: conventional sums agree")
	}
	for L := 1; L <= 4; L++ {
		s1 := NewState64(L)
		s1.Add(a)
		s1.Add(b)
		s1.Add(c)
		s2 := NewState64(L)
		s2.Add(a)
		s2.Add(c)
		s2.Add(b)
		if v1, v2 := s1.Value(), s2.Value(); math.Float64bits(v1) != math.Float64bits(v2) {
			t.Errorf("L=%d: order changed the reproducible sum: %v vs %v", L, v1, v2)
		}
		if !s1.Equal(&s2) {
			t.Errorf("L=%d: states not bit-equal", L)
		}
	}
}

func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for kind := 0; kind < 4; kind++ {
		for L := 1; L <= 4; L++ {
			xs := randVals(rng, 500, kind)
			s1 := NewState64(L)
			for _, x := range xs {
				s1.Add(x)
			}
			for trial := 0; trial < 5; trial++ {
				perm := rng.Perm(len(xs))
				s2 := NewState64(L)
				for _, i := range perm {
					s2.Add(xs[i])
				}
				if !s1.Equal(&s2) {
					t.Fatalf("kind=%d L=%d trial=%d: permutation changed state", kind, L, trial)
				}
				if math.Float64bits(s1.Value()) != math.Float64bits(s2.Value()) {
					t.Fatalf("kind=%d L=%d: permutation changed value", kind, L)
				}
			}
		}
	}
}

func TestChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := randVals(rng, 3000, 2)
	want := NewState64(2)
	for _, x := range xs {
		want.Add(x)
	}
	for trial := 0; trial < 10; trial++ {
		s := NewState64(2)
		rest := xs
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			s.AddSlice(rest[:n])
			rest = rest[n:]
		}
		if !s.Equal(&want) {
			t.Fatalf("trial %d: chunked AddSlice differs from per-value Add", trial)
		}
	}
}

func TestMergeTreeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := randVals(rng, 2048, 2)
	// Reference: single state.
	ref := NewState64(3)
	for _, x := range xs {
		ref.Add(x)
	}
	// Partition into k parts and merge with different tree shapes.
	for _, k := range []int{2, 3, 7, 16} {
		parts := make([]State64, k)
		for i := range parts {
			parts[i] = NewState64(3)
		}
		for i, x := range xs {
			parts[i%k].Add(x)
		}
		// Left-deep merge.
		left := NewState64(3)
		for i := range parts {
			p := parts[i]
			left.Merge(&p)
		}
		// Right-deep merge.
		right := NewState64(3)
		for i := len(parts) - 1; i >= 0; i-- {
			p := parts[i]
			right.Merge(&p)
		}
		// Pairwise (binary tree) merge.
		tree := make([]State64, k)
		copy(tree, parts)
		for len(tree) > 1 {
			var next []State64
			for i := 0; i+1 < len(tree); i += 2 {
				m := tree[i]
				m.Merge(&tree[i+1])
				next = append(next, m)
			}
			if len(tree)%2 == 1 {
				next = append(next, tree[len(tree)-1])
			}
			tree = next
		}
		if !left.Equal(&ref) || !right.Equal(&ref) || !tree[0].Equal(&ref) {
			t.Fatalf("k=%d: merge tree shape changed the state", k)
		}
		if math.Float64bits(left.Value()) != math.Float64bits(ref.Value()) {
			t.Fatalf("k=%d: merge changed the value", k)
		}
	}
}

func TestMergeEmptyStates(t *testing.T) {
	a := NewState64(2)
	b := NewState64(2)
	b.Add(3.25)
	a.Merge(&b) // empty ← non-empty
	if a.Value() != 3.25 {
		t.Errorf("merge into empty: %v", a.Value())
	}
	c := NewState64(2)
	a.Merge(&c) // non-empty ← empty
	if a.Value() != 3.25 {
		t.Errorf("merge of empty: %v", a.Value())
	}
	d := NewState64(2)
	e := NewState64(2)
	d.Merge(&e)
	if !d.IsEmpty() {
		t.Error("empty+empty not empty")
	}
}

func TestMergeLevelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging states with different L did not panic")
		}
	}()
	a := NewState64(2)
	b := NewState64(3)
	a.Merge(&b)
}

func TestVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for kind := 0; kind < 4; kind++ {
		for L := 1; L <= 4; L++ {
			for _, n := range []int{0, 1, 3, 4, 5, 17, 100, 1000, 10000} {
				xs := randVals(rng, n, kind)
				a := NewState64(L)
				for _, x := range xs {
					a.Add(x)
				}
				b := NewState64(L)
				b.AddSliceVec(xs)
				if !a.Equal(&b) {
					t.Fatalf("kind=%d L=%d n=%d: vec kernel state differs", kind, L, n)
				}
				if math.Float64bits(a.Value()) != math.Float64bits(b.Value()) {
					t.Fatalf("kind=%d L=%d n=%d: vec kernel value differs", kind, L, n)
				}
			}
		}
	}
}

func TestVecChunkedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := randVals(rng, 5000, 2)
	ref := NewState64(2)
	for _, x := range xs {
		ref.Add(x)
	}
	for _, c := range []int{1, 2, 7, 16, 64, 512} {
		s := NewState64(2)
		for i := 0; i < len(xs); i += c {
			end := i + c
			if end > len(xs) {
				end = len(xs)
			}
			s.AddSliceVec(xs[i:end])
		}
		if !s.Equal(&ref) {
			t.Fatalf("chunk size %d: vec chunked state differs", c)
		}
	}
}

func TestAccuracyBound(t *testing.T) {
	// Eq. 6: |error| ≤ n · 2^((1−L)·W−1) · max|b|.
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1000, 100000} {
		for kind := 0; kind < 2; kind++ {
			xs := randVals(rng, n, kind)
			maxAbs := 0.0
			for _, x := range xs {
				if a := math.Abs(x); a > maxAbs {
					maxAbs = a
				}
			}
			exact := exactSum(xs)
			for L := 1; L <= 4; L++ {
				s := NewState64(L)
				s.AddSlice(xs)
				got := new(big.Float).SetPrec(2100).SetFloat64(s.Value())
				err := new(big.Float).Sub(got, exact)
				err.Abs(err)
				bound := float64(n) * math.Ldexp(1, (1-L)*floatbits.W64-1) * maxAbs
				// Add the final rounding of the result itself.
				bound += math.Abs(s.Value()) * 0x1p-50
				ef, _ := err.Float64()
				if ef > bound {
					t.Errorf("n=%d kind=%d L=%d: |err|=%g exceeds bound %g", n, kind, L, ef, bound)
				}
			}
		}
	}
}

func TestAccuracyComparableToConventional(t *testing.T) {
	// Section VI-B: RSUM with L = 2 has accuracy comparable to a
	// conventional summation; L = 3 is much more accurate.
	rng := rand.New(rand.NewSource(23))
	xs := randVals(rng, 100000, 1)
	exact := exactSum(xs)
	conv := 0.0
	for _, x := range xs {
		conv += x
	}
	errOf := func(v float64) float64 {
		d := new(big.Float).Sub(new(big.Float).SetPrec(2100).SetFloat64(v), exact)
		d.Abs(d)
		f, _ := d.Float64()
		return f
	}
	convErr := errOf(conv)
	s2 := NewState64(2)
	s2.AddSlice(xs)
	s3 := NewState64(3)
	s3.AddSlice(xs)
	if e2 := errOf(s2.Value()); e2 > 1e6*convErr+1e-9 {
		t.Errorf("L=2 error %g not comparable to conventional %g", e2, convErr)
	}
	if e3 := errOf(s3.Value()); e3 > convErr+1e-12 && convErr > 0 {
		t.Errorf("L=3 error %g should beat conventional %g", e3, convErr)
	}
}

func TestSpecialValues(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"nan", []float64{1, math.NaN(), 2}, math.NaN()},
		{"posinf", []float64{1, inf, 2}, inf},
		{"neginf", []float64{1, -inf, 2}, -inf},
		{"bothinf", []float64{inf, -inf}, math.NaN()},
		{"inf+nan", []float64{inf, math.NaN()}, math.NaN()},
		{"overflow", []float64{0x1p990, 1}, inf},
		{"negoverflow", []float64{-0x1p990, 1}, -inf},
	}
	for _, c := range cases {
		// Any permutation yields the same special result.
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)))
			perm := rng.Perm(len(c.xs))
			s := NewState64(2)
			for _, i := range perm {
				s.Add(c.xs[i])
			}
			got := s.Value()
			if math.IsNaN(c.want) {
				if !math.IsNaN(got) {
					t.Errorf("%s: got %v, want NaN", c.name, got)
				}
			} else if got != c.want {
				t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			}
		}
	}
}

func TestSpecialsThroughSlicePaths(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 3}
	a := NewState64(2)
	a.AddSlice(xs)
	b := NewState64(2)
	b.AddSliceVec(xs)
	if !math.IsNaN(a.Value()) || !math.IsNaN(b.Value()) {
		t.Error("NaN lost in slice paths")
	}
}

func TestZerosAndSignedZero(t *testing.T) {
	s := NewState64(2)
	s.Add(0)
	s.Add(math.Copysign(0, -1))
	if v := s.Value(); v != 0 {
		t.Errorf("sum of zeros = %v", v)
	}
	s.Add(5)
	s.Add(-5)
	if v := s.Value(); v != 0 {
		t.Errorf("cancelling sum = %v", v)
	}
}

func TestSubnormalInputs(t *testing.T) {
	xs := []float64{math.SmallestNonzeroFloat64, 0x1p-1070, -0x1p-1070, 0x1p-1022}
	s := NewState64(4)
	for _, x := range xs {
		s.Add(x)
	}
	// Values below the lowest level are dropped deterministically; the
	// important property is reproducibility, checked by permuting.
	v1 := s.Value()
	s2 := NewState64(4)
	for i := len(xs) - 1; i >= 0; i-- {
		s2.Add(xs[i])
	}
	if math.Float64bits(v1) != math.Float64bits(s2.Value()) {
		t.Error("subnormal inputs broke reproducibility")
	}
}

func TestHugeDynamicRange(t *testing.T) {
	// Exponents spanning the full supported range, forcing many level
	// shifts in every order.
	xs := []float64{1e-300, 1e300, -1e300, 42.5, 1e-30, 7e250, -7e250}
	var ref State64
	ref.Reset(3)
	for _, x := range xs {
		ref.Add(x)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(xs))
		s := NewState64(3)
		for _, i := range perm {
			s.Add(xs[i])
		}
		if !s.Equal(&ref) {
			t.Fatalf("trial %d: huge-range permutation changed state", trial)
		}
	}
	// With everything cancelling except 42.5 + 1e-30, L=3 should get
	// very close to the truth.
	if got := ref.Value(); math.Abs(got-42.5) > 1e-6 {
		t.Errorf("Value() = %v, want ≈ 42.5", got)
	}
}

func TestCarryPropagationInvariant(t *testing.T) {
	// After propagate, every live running sum lies in [1.5, 1.75)·ufp.
	rng := rand.New(rand.NewSource(37))
	s := NewState64(3)
	for i := 0; i < 100000; i++ {
		s.Add((rng.Float64() - 0.5) * 1000)
	}
	s.propagate()
	for l := 0; l < s.Levels(); l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp64 {
			continue
		}
		ufp := floatbits.Pow2_64(e)
		if s.s[l] < 1.5*ufp || s.s[l] >= 1.75*ufp {
			t.Errorf("level %d: S = %g·ufp out of [1.5, 1.75)", l, s.s[l]/ufp)
		}
	}
}

func TestRunningSumNeverChangesExponent(t *testing.T) {
	// The defining invariant of the algorithm: between level raises, the
	// running sums stay within their binade.
	rng := rand.New(rand.NewSource(41))
	s := NewState64(2)
	s.Add(1.0)
	e0 := s.eTop
	for i := 0; i < 50000; i++ {
		s.Add(rng.Float64()) // all < 1, never forces a raise
		if s.eTop != e0 {
			t.Fatalf("top level moved after %d adds", i)
		}
		for l := 0; l < s.Levels(); l++ {
			e := s.levelExp(l)
			if e < LowestLevelExp64 {
				continue
			}
			ufp := floatbits.Pow2_64(e)
			if s.s[l] < 1.0*ufp || s.s[l] >= 2.0*ufp {
				t.Fatalf("level %d drifted out of its binade: %g·ufp", l, s.s[l]/ufp)
			}
		}
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for L := 1; L <= MaxLevels; L++ {
		s := NewState64(L)
		for i := 0; i < 1000; i++ {
			s.Add((rng.Float64() - 0.3) * math.Ldexp(1, rng.Intn(40)))
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var r State64
		if err := r.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !r.Equal(&s) {
			t.Fatalf("L=%d: roundtrip state differs", L)
		}
		if math.Float64bits(r.Value()) != math.Float64bits(s.Value()) {
			t.Fatalf("L=%d: roundtrip value differs", L)
		}
	}
}

func TestMarshalCanonical(t *testing.T) {
	// States built from permutations of the same input marshal to the
	// same bytes.
	rng := rand.New(rand.NewSource(47))
	xs := randVals(rng, 500, 2)
	s1 := NewState64(2)
	for _, x := range xs {
		s1.Add(x)
	}
	perm := rng.Perm(len(xs))
	s2 := NewState64(2)
	for _, i := range perm {
		s2.Add(xs[i])
	}
	d1, _ := s1.MarshalBinary()
	d2, _ := s2.MarshalBinary()
	if string(d1) != string(d2) {
		t.Error("canonical encodings differ across permutations")
	}
}

func TestMergeBinary(t *testing.T) {
	// Merging from the wire is equivalent to merging the state directly.
	rng := rand.New(rand.NewSource(53))
	a := NewState64(2)
	b := NewState64(2)
	for i := 0; i < 2000; i++ {
		a.Add((rng.Float64() - 0.4) * math.Ldexp(1, rng.Intn(30)))
		b.Add((rng.Float64() - 0.6) * math.Ldexp(1, rng.Intn(30)))
	}
	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromWire := a
	if err := fromWire.MergeBinary(wire); err != nil {
		t.Fatal(err)
	}
	direct := a
	direct.Merge(&b)
	if !fromWire.Equal(&direct) {
		t.Fatal("MergeBinary result differs from direct Merge")
	}

	// Level mismatch and corrupt bytes error out without panicking.
	other := NewState64(3)
	enc, _ := other.MarshalBinary()
	if err := fromWire.MergeBinary(enc); err == nil {
		t.Error("level mismatch accepted")
	}
	if err := fromWire.MergeBinary(wire[:len(wire)-2]); err == nil {
		t.Error("truncated encoding accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s State64
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil data accepted")
	}
	if err := s.UnmarshalBinary(make([]byte, 5)); err == nil {
		t.Error("short data accepted")
	}
	gs := NewState64(2)
	good, _ := gs.MarshalBinary()
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("bad version accepted")
	}
	bad = append([]byte(nil), good...)
	bad[1] = kindState32
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("wrong kind accepted")
	}
	bad = append([]byte(nil), good...)
	bad[2] = 0
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("zero levels accepted")
	}
	if err := s.UnmarshalBinary(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestAddSliceSplitsArbitrarily(t *testing.T) {
	f := func(seed int64, cut uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := randVals(rng, 300, 1)
		k := int(cut) % len(xs)
		a := NewState64(2)
		a.AddSlice(xs)
		b := NewState64(2)
		b.AddSlice(xs[:k])
		b.AddSlice(xs[k:])
		return a.Equal(&b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	// Property: splitting at any point and merging equals sequential.
	f := func(seed int64, cut uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := randVals(rng, 200, 2)
		k := int(cut) % len(xs)
		seq := NewState64(2)
		for _, x := range xs {
			seq.Add(x)
		}
		a := NewState64(2)
		for _, x := range xs[:k] {
			a.Add(x)
		}
		b := NewState64(2)
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		return a.Equal(&seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddEagerMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for kind := 0; kind < 4; kind++ {
		for L := 1; L <= 4; L++ {
			xs := randVals(rng, 2000, kind)
			a := NewState64(L)
			for _, x := range xs {
				a.Add(x)
			}
			b := NewState64(L)
			for _, x := range xs {
				b.AddEager(x)
			}
			if !a.Equal(&b) {
				t.Fatalf("kind=%d L=%d: AddEager state differs from Add", kind, L)
			}
			if math.Float64bits(a.Value()) != math.Float64bits(b.Value()) {
				t.Fatalf("kind=%d L=%d: AddEager value differs", kind, L)
			}
			// Mixed eager/lazy usage also agrees.
			c := NewState64(L)
			for i, x := range xs {
				if i%3 == 0 {
					c.AddEager(x)
				} else {
					c.Add(x)
				}
			}
			if !a.Equal(&c) {
				t.Fatalf("kind=%d L=%d: mixed eager/lazy differs", kind, L)
			}
		}
	}
}

func TestAddEagerSpecials(t *testing.T) {
	s := NewState64(2)
	s.AddEager(math.NaN())
	if !math.IsNaN(s.Value()) {
		t.Error("AddEager lost NaN")
	}
	s = NewState64(2)
	s.AddEager(math.Inf(-1))
	s.AddEager(1)
	if !math.IsInf(s.Value(), -1) {
		t.Error("AddEager lost -Inf")
	}
	s = NewState64(2)
	s.AddEager(0)
	if !s.IsEmpty() {
		t.Error("AddEager(0) should keep state empty")
	}
}

func TestAddEagerMatchesAdd32(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for L := 1; L <= 4; L++ {
		xs := randVals32(rng, 2000, 2)
		a := NewState32(L)
		for _, x := range xs {
			a.Add(x)
		}
		b := NewState32(L)
		for _, x := range xs {
			b.AddEager(x)
		}
		if !a.Equal(&b) {
			t.Fatalf("L=%d: float32 AddEager differs", L)
		}
	}
}
