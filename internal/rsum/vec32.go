package rsum

import (
	"math"

	"repro/internal/floatbits"
)

// AddSliceVec absorbs a slice of float32 values using the vectorized
// kernel (Algorithm 3); see State64.AddSliceVec for the structure.
// Single precision uses the same lane count V; NB is 16 (2^(m−W−1) for
// m = 23, W = 18), so carry propagation runs every V·16 values.
func (s *State32) AddSliceVec(bs []float32) {
	if len(bs) == 0 {
		return
	}

	var lanes [MaxLevels][V]float32
	var carries [MaxLevels][V]int64
	loaded := false
	L := int(s.levels)

	load := func() {
		for l := 0; l < L; l++ {
			fresh := s.freshLevel(l)
			lanes[l][0] = s.s[l]
			carries[l][0] = s.c[l]
			for v := 1; v < V; v++ {
				lanes[l][v] = fresh
				carries[l][v] = 0
			}
		}
		loaded = true
	}

	propagateLanes := func() {
		for l := 0; l < L; l++ {
			e := s.levelExp(l)
			if e < LowestLevelExp32 {
				break
			}
			ufp := floatbits.Pow2_32(e)
			anchor := 1.5 * ufp
			quarter := 0.25 * ufp
			for v := 0; v < V; v++ {
				delta := lanes[l][v] - anchor
				d := float32(math.Floor(float64(delta / quarter)))
				if d != 0 {
					lanes[l][v] -= d * quarter
					carries[l][v] += int64(d)
				}
			}
		}
	}

	raiseLanes := func(eNeed int) {
		shift := (eNeed - int(s.eTop)) / floatbits.W32
		s.eTop = int32(eNeed)
		for l := L - 1; l >= 0; l-- {
			if l >= shift {
				lanes[l] = lanes[l-shift]
				carries[l] = carries[l-shift]
			} else {
				fresh := s.freshLevel(l)
				for v := 0; v < V; v++ {
					lanes[l][v] = fresh
					carries[l][v] = 0
				}
			}
		}
	}

	steps := int32(0)
	input := bs
	for len(input) > 0 {
		n := len(input)
		if n > V*(floatbits.NB32-1) {
			n = V * (floatbits.NB32 - 1)
		}
		tile := input[:n]
		input = input[n:]

		maxExp, ok := chunkMaxExp32(tile)
		if !ok {
			if loaded {
				s.storeLanes32(&lanes, &carries)
				loaded = false
			}
			for _, b := range tile {
				s.Add(b)
			}
			continue
		}
		if maxExp == minInt {
			continue
		}
		if !s.init {
			s.raise(maxExp)
		}
		if !loaded {
			load()
		}
		if maxExp >= int(s.eTop)-floatbits.MantBits32+floatbits.W32-1 {
			raiseLanes(floatbits.TopLevelExp32(maxExp))
		}
		// +1 covers the ≤ V−1 tail values of the final tile, which are
		// spread round-robin over the lanes (≤ 1 extra extraction each).
		if steps+int32((n+V-1)/V)+1 > floatbits.NB32 {
			propagateLanes()
			steps = 0
		}

		i := 0
		for ; i+V <= n; i += V {
			r0, r1, r2, r3 := tile[i], tile[i+1], tile[i+2], tile[i+3]
			for l := 0; l < L; l++ {
				e := s.levelExp(l)
				if e < LowestLevelExp32 {
					break
				}
				ext := floatbits.Extractor32(e)
				q0 := (r0 + ext) - ext
				q1 := (r1 + ext) - ext
				q2 := (r2 + ext) - ext
				q3 := (r3 + ext) - ext
				lanes[l][0] += q0
				lanes[l][1] += q1
				lanes[l][2] += q2
				lanes[l][3] += q3
				r0 -= q0
				r1 -= q1
				r2 -= q2
				r3 -= q3
			}
		}
		// Tail of the tile: scalar extraction, spread round-robin over
		// the lanes so no lane exceeds its carry-propagation budget.
		for lane := 0; i < n; i, lane = i+1, lane+1 {
			b := tile[i]
			if b == 0 {
				continue
			}
			r := b
			for l := 0; l < L; l++ {
				e := s.levelExp(l)
				if e < LowestLevelExp32 {
					break
				}
				ext := floatbits.Extractor32(e)
				q := (r + ext) - ext
				lanes[l][lane%V] += q
				r -= q
				if r == 0 {
					break
				}
			}
		}
		steps += int32((n + V - 1) / V)
	}

	if loaded {
		propagateLanes()
		s.storeLanes32(&lanes, &carries)
	}
}

// storeLanes32 is the horizontal reduction of Eq. 2–3 for float32.
func (s *State32) storeLanes32(lanes *[MaxLevels][V]float32, carries *[MaxLevels][V]int64) {
	L := int(s.levels)
	for l := 0; l < L; l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp32 {
			s.s[l] = 0
			s.c[l] = 0
			continue
		}
		ufp := floatbits.Pow2_32(e)
		anchor := 1.5 * ufp
		quarter := 0.25 * ufp
		sum := lanes[l][0]
		carry := carries[l][0]
		for v := 1; v < V; v++ {
			net := lanes[l][v] - anchor
			sum += net
			if sum-anchor >= quarter {
				sum -= quarter
				carry++
			}
			carry += carries[l][v]
		}
		s.s[l] = sum
		s.c[l] = carry
	}
	s.nAdds = 0
}
