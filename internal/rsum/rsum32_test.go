package rsum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVals32(rng *rand.Rand, n int, kind int) []float32 {
	xs := make([]float32, n)
	for i := range xs {
		switch kind {
		case 0:
			xs[i] = 1 + rng.Float32()
		case 1:
			xs[i] = float32(rng.ExpFloat64())
		default:
			xs[i] = float32((rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-20))
		}
	}
	return xs
}

func TestEmptyState32(t *testing.T) {
	s := NewState32(2)
	if !s.IsEmpty() || s.Value() != 0 {
		t.Error("new State32 not empty")
	}
}

func TestPermutationInvariance32(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for kind := 0; kind < 3; kind++ {
		for L := 1; L <= 4; L++ {
			xs := randVals32(rng, 500, kind)
			s1 := NewState32(L)
			for _, x := range xs {
				s1.Add(x)
			}
			for trial := 0; trial < 5; trial++ {
				perm := rng.Perm(len(xs))
				s2 := NewState32(L)
				for _, i := range perm {
					s2.Add(xs[i])
				}
				if !s1.Equal(&s2) {
					t.Fatalf("kind=%d L=%d: permutation changed State32", kind, L)
				}
				if math.Float32bits(s1.Value()) != math.Float32bits(s2.Value()) {
					t.Fatalf("kind=%d L=%d: permutation changed float32 value", kind, L)
				}
			}
		}
	}
}

func TestMergeMatchesSequential32(t *testing.T) {
	f := func(seed int64, cut uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := randVals32(rng, 200, 2)
		k := int(cut) % len(xs)
		seq := NewState32(2)
		for _, x := range xs {
			seq.Add(x)
		}
		a := NewState32(2)
		for _, x := range xs[:k] {
			a.Add(x)
		}
		b := NewState32(2)
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		return a.Equal(&seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddSliceMatchesAdd32(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	xs := randVals32(rng, 3000, 2)
	a := NewState32(2)
	for _, x := range xs {
		a.Add(x)
	}
	b := NewState32(2)
	rest := xs
	for len(rest) > 0 {
		n := 1 + rng.Intn(len(rest))
		b.AddSlice(rest[:n])
		rest = rest[n:]
	}
	if !a.Equal(&b) {
		t.Error("State32 AddSlice differs from Add")
	}
}

func TestSpecialValues32(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	s := NewState32(2)
	s.Add(1)
	s.Add(nan)
	if v := s.Value(); v == v {
		t.Errorf("NaN lost: %v", v)
	}
	s = NewState32(2)
	s.Add(inf)
	s.Add(5)
	if v := s.Value(); !math.IsInf(float64(v), 1) {
		t.Errorf("+Inf lost: %v", v)
	}
	s = NewState32(2)
	s.Add(inf)
	s.Add(-inf)
	if v := s.Value(); v == v {
		t.Errorf("Inf−Inf should be NaN: %v", v)
	}
	// Overflow domain: |x| ≥ 2^120 saturates deterministically.
	s = NewState32(2)
	s.Add(0x1p121)
	if v := s.Value(); !math.IsInf(float64(v), 1) {
		t.Errorf("overflow input: %v", v)
	}
}

func TestAccuracy32ComparableToConventional(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	xs := randVals32(rng, 50000, 0)
	exact := 0.0
	for _, x := range xs {
		exact += float64(x)
	}
	conv := float32(0)
	for _, x := range xs {
		conv += x
	}
	s := NewState32(2)
	s.AddSlice(xs)
	convErr := math.Abs(float64(conv) - exact)
	reproErr := math.Abs(float64(s.Value()) - exact)
	// L=2 must be at least in the same ballpark as conventional single
	// precision (it is usually much better).
	if reproErr > 10*convErr+1e-3 {
		t.Errorf("repro L=2 err %g vs conventional %g", reproErr, convErr)
	}
}

func TestMarshalRoundtrip32(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for L := 1; L <= MaxLevels; L++ {
		s := NewState32(L)
		for i := 0; i < 500; i++ {
			s.Add(randVals32(rng, 1, 2)[0])
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var r State32
		if err := r.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !r.Equal(&s) {
			t.Fatalf("L=%d: State32 roundtrip differs", L)
		}
	}
	// Kind mismatch across types must be rejected.
	s64 := NewState64(2)
	d64, _ := s64.MarshalBinary()
	var s32 State32
	if err := s32.UnmarshalBinary(d64); err == nil {
		t.Error("State32 accepted a State64 encoding")
	}
}

func TestVecMatchesScalar32(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for kind := 0; kind < 3; kind++ {
		for L := 1; L <= 4; L++ {
			for _, n := range []int{0, 1, 3, 5, 17, 63, 64, 65, 1000, 5000} {
				xs := randVals32(rng, n, kind)
				a := NewState32(L)
				for _, x := range xs {
					a.Add(x)
				}
				b := NewState32(L)
				b.AddSliceVec(xs)
				if !a.Equal(&b) {
					t.Fatalf("kind=%d L=%d n=%d: float32 vec kernel state differs", kind, L, n)
				}
				if math.Float32bits(a.Value()) != math.Float32bits(b.Value()) {
					t.Fatalf("kind=%d L=%d n=%d: float32 vec value differs", kind, L, n)
				}
			}
		}
	}
}

func TestVecChunked32(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	xs := randVals32(rng, 4000, 2)
	ref := NewState32(2)
	for _, x := range xs {
		ref.Add(x)
	}
	for _, c := range []int{1, 5, 16, 61, 256} {
		s := NewState32(2)
		for i := 0; i < len(xs); i += c {
			end := i + c
			if end > len(xs) {
				end = len(xs)
			}
			s.AddSliceVec(xs[i:end])
		}
		if !s.Equal(&ref) {
			t.Fatalf("chunk %d: float32 vec chunked differs", c)
		}
	}
}
