package rsum

import (
	"math"

	"repro/internal/floatbits"
)

// State32 is a reproducible summation state for float32 inputs
// (the repro<float,L> of the paper). See State64 for the full contract;
// State32 mirrors it with single-precision parameters (m = 23, W = 18,
// NB = 16). The numeric kernels are deliberately kept as concrete
// float32 code rather than shared generics: every operation must execute
// in single precision for the exactness arguments to hold, and the inner
// loops are performance-critical.
type State32 struct {
	s [MaxLevels]float32
	c [MaxLevels]int64

	eTop   int32
	nAdds  int32
	levels int8
	init   bool

	nan    uint32
	posInf uint32
	negInf uint32
}

// NewState32 returns an empty single-precision summation state.
func NewState32(levels int) State32 {
	var s State32
	s.Reset(levels)
	return s
}

// Reset re-initializes the state to an empty sum with the given number
// of levels.
func (s *State32) Reset(levels int) {
	if levels < 1 || levels > MaxLevels {
		panic("rsum: level count out of range [1, MaxLevels]")
	}
	*s = State32{levels: int8(levels)}
}

// Levels returns the number of summation levels L.
func (s *State32) Levels() int { return int(s.levels) }

// IsEmpty reports whether the state has absorbed no values.
func (s *State32) IsEmpty() bool {
	return !s.init && s.nan == 0 && s.posInf == 0 && s.negInf == 0
}

func (s *State32) levelExp(l int) int {
	return int(s.eTop) - l*floatbits.W32
}

// Add absorbs one value into the state.
func (s *State32) Add(b float32) {
	if b != b {
		s.nan++
		return
	}
	if b == 0 {
		return
	}
	eb := floatbits.Exponent32(b)
	if eb > floatbits.MaxInputExp32 {
		if b > 0 {
			s.posInf++
		} else {
			s.negInf++
		}
		return
	}
	if !s.init || eb >= int(s.eTop)-floatbits.MantBits32+floatbits.W32-1 {
		s.raise(eb)
	}
	s.extract(b)
	s.nAdds++
	if s.nAdds >= floatbits.NB32 {
		s.propagate()
	}
}

func (s *State32) raise(eb int) {
	eNeed := floatbits.TopLevelExp32(eb)
	if !s.init {
		s.init = true
		s.eTop = int32(eNeed)
		for l := 0; l < int(s.levels); l++ {
			s.s[l] = s.freshLevel(l)
			s.c[l] = 0
		}
		return
	}
	if eNeed <= int(s.eTop) {
		return
	}
	s.raiseTo(eNeed)
}

func (s *State32) raiseTo(e int) {
	if e <= int(s.eTop) {
		return
	}
	shift := (e - int(s.eTop)) / floatbits.W32
	s.eTop = int32(e)
	L := int(s.levels)
	for l := L - 1; l >= 0; l-- {
		if l >= shift {
			s.s[l] = s.s[l-shift]
			s.c[l] = s.c[l-shift]
		} else {
			s.s[l] = s.freshLevel(l)
			s.c[l] = 0
		}
	}
}

func (s *State32) freshLevel(l int) float32 {
	e := s.levelExp(l)
	if e < LowestLevelExp32 {
		return 0
	}
	return floatbits.Extractor32(e)
}

func (s *State32) extract(b float32) {
	r := b
	for l := 0; l < int(s.levels); l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp32 {
			return
		}
		ext := floatbits.Extractor32(e)
		q := (r + ext) - ext
		s.s[l] += q // exact: same binade, multiple of ulp
		r -= q      // exact remainder
		// No early exit on r == 0: the kernel is deliberately
		// branch-free over levels so the cost scales with L as in the
		// paper (≈ 12 FP ops per level, Section IV).
	}
}

func (s *State32) propagate() {
	for l := 0; l < int(s.levels); l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp32 {
			break
		}
		ufp := floatbits.Pow2_32(e)
		quarter := 0.25 * ufp
		delta := s.s[l] - 1.5*ufp
		d := float32(math.Floor(float64(delta / quarter)))
		if d != 0 {
			s.s[l] -= d * quarter
			s.c[l] += int64(d)
		}
	}
	s.nAdds = 0
}

// Merge absorbs the other state into s; see State64.Merge.
func (s *State32) Merge(o *State32) {
	if s.levels != o.levels {
		panic("rsum: merging states with different level counts")
	}
	s.nan += o.nan
	s.posInf += o.posInf
	s.negInf += o.negInf
	if !o.init {
		return
	}
	if !s.init {
		s.s, s.c, s.eTop, s.nAdds, s.init = o.s, o.c, o.eTop, o.nAdds, o.init
		return
	}
	if o.eTop > s.eTop {
		s.raiseTo(int(o.eTop))
	}
	s.propagate()
	shift := (int(s.eTop) - int(o.eTop)) / floatbits.W32
	for lo := 0; lo < int(o.levels); lo++ {
		l := lo + shift
		if l >= int(s.levels) {
			break
		}
		e := s.levelExp(l)
		if e < LowestLevelExp32 {
			break
		}
		if o.s[lo] == 0 {
			continue
		}
		ufp := floatbits.Pow2_32(e)
		quarter := 0.25 * ufp
		net := o.s[lo] - 1.5*ufp
		if net >= quarter {
			net -= quarter
			s.c[l]++
		}
		s.s[l] += net
		s.c[l] += o.c[lo]
		delta := s.s[l] - 1.5*ufp
		d := float32(math.Floor(float64(delta / quarter)))
		if d != 0 {
			s.s[l] -= d * quarter
			s.c[l] += int64(d)
		}
	}
	s.nAdds = 0
}

// Value finalizes the state and returns the reproducible sum.
func (s *State32) Value() float32 {
	if s.nan > 0 || (s.posInf > 0 && s.negInf > 0) {
		return float32(math.NaN())
	}
	if s.posInf > 0 {
		return float32(math.Inf(1))
	}
	if s.negInf > 0 {
		return float32(math.Inf(-1))
	}
	if !s.init {
		return 0
	}
	t := *s
	t.propagate()
	q := float32(0)
	for l := int(t.levels) - 1; l >= 0; l-- {
		e := t.levelExp(l)
		if e < LowestLevelExp32 {
			continue
		}
		ufp := floatbits.Pow2_32(e)
		term := (t.s[l] - 1.5*ufp) + 0.25*ufp*float32(t.c[l])
		q += term
	}
	return q
}

// Equal reports whether two states are bit-identical after normalization.
func (s *State32) Equal(o *State32) bool {
	if s.levels != o.levels || s.nan != o.nan ||
		s.posInf != o.posInf || s.negInf != o.negInf || s.init != o.init {
		return false
	}
	if !s.init {
		return true
	}
	a, b := *s, *o
	a.propagate()
	b.propagate()
	if a.eTop != b.eTop {
		return false
	}
	for l := 0; l < int(a.levels); l++ {
		if math.Float32bits(a.s[l]) != math.Float32bits(b.s[l]) || a.c[l] != b.c[l] {
			return false
		}
	}
	return true
}

// AddSlice absorbs a slice of values with the tiling optimization.
func (s *State32) AddSlice(bs []float32) {
	for len(bs) > 0 {
		n := len(bs)
		if n > floatbits.NB32 {
			n = floatbits.NB32
		}
		chunk := bs[:n]
		bs = bs[n:]

		maxExp, ok := chunkMaxExp32(chunk)
		if !ok {
			for _, b := range chunk {
				s.Add(b)
			}
			continue
		}
		if maxExp == minInt {
			continue
		}
		if !s.init || maxExp >= int(s.eTop)-floatbits.MantBits32+floatbits.W32-1 {
			s.raise(maxExp)
		}
		if s.nAdds+int32(n) > floatbits.NB32 {
			s.propagate()
		}
		for _, b := range chunk {
			if b == 0 {
				continue
			}
			s.extract(b)
		}
		s.nAdds += int32(n)
	}
}

func chunkMaxExp32(chunk []float32) (maxExp int, ok bool) {
	m := float32(0)
	for _, b := range chunk {
		a := b
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
		if b != b { // NaN never wins the max comparison; check explicitly
			return 0, false
		}
	}
	if m >= 0x1p120 {
		return 0, false
	}
	if m == 0 {
		return minInt, true
	}
	return floatbits.Exponent32(m), true
}

// AddEager absorbs one value with per-element carry-bit propagation;
// see State64.AddEager.
func (s *State32) AddEager(b float32) {
	if b != b {
		s.nan++
		return
	}
	if b == 0 {
		return
	}
	eb := floatbits.Exponent32(b)
	if eb > floatbits.MaxInputExp32 {
		if b > 0 {
			s.posInf++
		} else {
			s.negInf++
		}
		return
	}
	if !s.init || eb >= int(s.eTop)-floatbits.MantBits32+floatbits.W32-1 {
		s.raise(eb)
	}
	r := b
	for l := 0; l < int(s.levels); l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp32 {
			return
		}
		ext := floatbits.Extractor32(e)
		q := (r + ext) - ext
		sum := s.s[l] + q
		r -= q
		ufp := floatbits.Pow2_32(e)
		quarter := 0.25 * ufp
		delta := sum - 1.5*ufp
		if d := float32(math.Floor(float64(delta / quarter))); d != 0 {
			sum -= d * quarter
			s.c[l] += int64(d)
		}
		s.s[l] = sum
	}
}
