//go:build !race

package rsum

const raceEnabled = false
