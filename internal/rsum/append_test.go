package rsum

import (
	"bytes"
	"math"
	"testing"
)

// corpus64 generates State64s covering the encoding surface: every
// level count, fresh and empty states, special-value counters, raised
// and saturated accumulators, and states whose lowest levels are dead.
func corpus64(t *testing.T) []State64 {
	t.Helper()
	var states []State64
	for levels := 1; levels <= MaxLevels; levels++ {
		empty := NewState64(levels)
		states = append(states, empty)

		one := NewState64(levels)
		one.Add(1.5)
		states = append(states, one)

		specials := NewState64(levels)
		specials.Add(math.NaN())
		specials.Add(math.Inf(1))
		specials.Add(math.Inf(-1))
		specials.Add(math.Inf(1))
		states = append(states, specials)

		mixed := NewState64(levels)
		mixed.AddSlice([]float64{1.0, -0.25, 1e300, -1e300, 0x1p-1060, 3.5e-310, -2.75})
		mixed.Add(math.NaN())
		states = append(states, mixed)

		// Saturated: enough same-sign adds to spill carries on every
		// live level, plus a late raise that shifts levels down.
		sat := NewState64(levels)
		for i := 0; i < 4096; i++ {
			sat.Add(float64(i%13) * 0x1p+40)
		}
		sat.Add(0x1p+500) // raise: demotes existing levels
		for i := 0; i < 512; i++ {
			sat.Add(-0x1p+460)
		}
		states = append(states, sat)

		// Deep negative exponents: lowest levels fall below
		// LowestLevelExp64 and must encode as dead (zero) levels.
		deep := NewState64(levels)
		deep.Add(0x1p-900)
		deep.Add(-0x1p-970)
		states = append(states, deep)

		merged := NewState64(levels)
		merged.Merge(&mixed)
		merged.Merge(&sat)
		states = append(states, merged)
	}
	return states
}

func corpus32(t *testing.T) []State32 {
	t.Helper()
	var states []State32
	for levels := 1; levels <= MaxLevels; levels++ {
		empty := NewState32(levels)
		states = append(states, empty)

		specials := NewState32(levels)
		specials.Add(float32(math.NaN()))
		specials.Add(float32(math.Inf(1)))
		specials.Add(float32(math.Inf(-1)))
		states = append(states, specials)

		mixed := NewState32(levels)
		mixed.AddSlice([]float32{1.0, -0.25, 1e30, -1e30, 0x1p-120, -2.75})
		states = append(states, mixed)

		sat := NewState32(levels)
		for i := 0; i < 4096; i++ {
			sat.Add(float32(i%13) * 0x1p+20)
		}
		sat.Add(0x1p+100)
		states = append(states, sat)
	}
	return states
}

// TestAppendBinaryEquivalence64: the AppendBinary fast path must
// produce bytes identical to the legacy MarshalBinary for every state
// in the corpus — the wire format is canonical, so the two encoders may
// never drift. Appending after a non-empty prefix must leave the prefix
// intact and produce the same encoding.
func TestAppendBinaryEquivalence64(t *testing.T) {
	prefix := []byte{0xde, 0xad, 0xbe, 0xef}
	for i, s := range corpus64(t) {
		want, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("state %d: MarshalBinary: %v", i, err)
		}
		got, err := s.AppendBinary(nil)
		if err != nil {
			t.Fatalf("state %d: AppendBinary: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("state %d: AppendBinary differs from MarshalBinary\n got %x\nwant %x", i, got, want)
		}
		if len(want) != s.EncodedSize() {
			t.Fatalf("state %d: EncodedSize %d, encoding is %d bytes", i, s.EncodedSize(), len(want))
		}
		ext, err := s.AppendBinary(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("state %d: AppendBinary with prefix: %v", i, err)
		}
		if !bytes.Equal(ext[:len(prefix)], prefix) || !bytes.Equal(ext[len(prefix):], want) {
			t.Fatalf("state %d: prefixed AppendBinary corrupted the buffer", i)
		}
		// The appended bytes decode back to an equal state.
		var rt State64
		if err := rt.UnmarshalBinary(got); err != nil {
			t.Fatalf("state %d: decode of AppendBinary output: %v", i, err)
		}
		if !rt.Equal(&s) {
			t.Fatalf("state %d: AppendBinary round trip is not Equal", i)
		}
	}
}

func TestAppendBinaryEquivalence32(t *testing.T) {
	for i, s := range corpus32(t) {
		want, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("state %d: MarshalBinary: %v", i, err)
		}
		got, err := s.AppendBinary(nil)
		if err != nil {
			t.Fatalf("state %d: AppendBinary: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("state %d: AppendBinary differs from MarshalBinary\n got %x\nwant %x", i, got, want)
		}
		if len(want) != s.EncodedSize() {
			t.Fatalf("state %d: EncodedSize %d, encoding is %d bytes", i, s.EncodedSize(), len(want))
		}
		var rt State32
		if err := rt.UnmarshalBinary(got); err != nil {
			t.Fatalf("state %d: decode of AppendBinary output: %v", i, err)
		}
	}
}

// TestAppendBinaryZeroAlloc pins the fast path: encoding into a buffer
// with sufficient capacity performs no heap allocation. This is the
// property the shuffle's per-key encode loop depends on.
func TestAppendBinaryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	s := NewState64(4)
	s.AddSlice([]float64{1.5, -2.25, 1e300, -1e300, 0x1p-900})
	buf := make([]byte, 0, marshalSize64)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = s.AppendBinary(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendBinary into a pre-sized buffer: %v allocs/op, want 0", allocs)
	}
}

// TestEncodedLen64 pins the length-from-prefix reader the tuple wire
// format walks concatenated encodings with: it must agree with the
// actual encoding length on every corpus state and reject corrupt
// prefixes without reading past them.
func TestEncodedLen64(t *testing.T) {
	for i, st := range corpus64(t) {
		enc, err := st.MarshalBinary()
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		// The header alone (with trailing junk) must yield the exact
		// encoding length.
		n, err := EncodedLen64(append(enc[:headerSize:headerSize], 0xFF, 0xEE))
		if err != nil {
			t.Fatalf("state %d: EncodedLen64: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("state %d: EncodedLen64 = %d, encoding is %d bytes", i, n, len(enc))
		}
	}
	gs := NewState64(2)
	good, err := gs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		good[:3],                         // shorter than the fixed header prefix
		{99, good[1], good[2], good[3]},  // unknown version
		{good[0], 32, good[2], good[3]},  // wrong kind
		{good[0], good[1], 0, good[3]},   // zero levels
		{good[0], good[1], 200, good[3]}, // levels beyond MaxLevels
	}
	for i, b := range bad {
		if _, err := EncodedLen64(b); err == nil {
			t.Errorf("corrupt prefix %d accepted", i)
		}
	}
}
