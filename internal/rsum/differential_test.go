package rsum

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/floatbits"
	"repro/internal/workload"
)

// Differential property tests: the reproducible sum is checked against
// the arbitrary-precision reference of internal/exact on adversarial
// inputs — catastrophic cancellation, denormals, huge magnitude
// spreads, and NaN/Inf mixes — for both the 64- and 32-bit paths. The
// tolerance is the paper's Eq. 6 bound plus the two floors the
// algorithm documents: final rounding to the destination format, and
// the dead-level cutoff below which contributions are too small for
// any level (2^(LowestLevelExp − W) per value).

// tol64 is the acceptance threshold for |rsum − exact| at level L.
func tol64(n, levels int, maxAbs, exactAbs float64) float64 {
	bound := exact.RSumBound(n, levels, maxAbs)
	rounding := exactAbs*0x1p-52 + 0x1p-1074
	floor := float64(n) * math.Ldexp(1, LowestLevelExp64-floatbits.W64)
	return bound + rounding + floor
}

// tol32 is the float32 analogue (errors measured in float64).
func tol32(n, levels int, maxAbs, exactAbs float64) float64 {
	bound := exact.RSumBound32(n, levels, maxAbs)
	rounding := exactAbs*0x1p-23 + 0x1p-149
	floor := float64(n) * math.Ldexp(1, LowestLevelExp32-floatbits.W32)
	return bound + rounding + floor
}

// adversarial64 returns the named adversarial float64 workloads.
func adversarial64() map[string][]float64 {
	rng := workload.NewRNG(271828)
	out := make(map[string][]float64)

	// Catastrophic cancellation: pairs ±x with magnitudes up to 2^40
	// that cancel exactly, plus a small residual the sum must recover.
	canc := make([]float64, 0, 4001)
	for i := 0; i < 2000; i++ {
		x := math.Ldexp(1+rng.Float64(), int(rng.Uint32n(41)))
		canc = append(canc, x, -x)
	}
	canc = append(canc, 0x1.5p-30)
	workload.Shuffle(3, canc)
	out["cancellation"] = canc

	// Denormals: multiples of the smallest subnormal, mixed signs.
	den := make([]float64, 3000)
	for i := range den {
		den[i] = float64(int64(rng.Uint32n(1<<20))-1<<19) * math.SmallestNonzeroFloat64
	}
	out["denormal"] = den

	// Magnitude spread over ±300 binades, all positive: the Eq. 6
	// bound is then a *relative* bound (the sum dominates maxAbs).
	spread := make([]float64, 5000)
	for i := range spread {
		spread[i] = math.Ldexp(1+rng.Float64(), int(rng.Uint32n(601))-300)
	}
	out["spread2p300"] = spread

	// Signed spread: same binade range with random signs.
	signed := make([]float64, 5000)
	for i := range signed {
		signed[i] = math.Ldexp(rng.Float64()-0.5, int(rng.Uint32n(601))-300)
	}
	out["signedspread"] = signed

	// Near-cancellation at huge magnitude with a tiny survivor.
	big := make([]float64, 0, 2001)
	for i := 0; i < 1000; i++ {
		x := math.Ldexp(1+rng.Float64(), 290+int(rng.Uint32n(10)))
		big = append(big, x, -x)
	}
	big = append(big, 1e-300)
	workload.Shuffle(5, big)
	out["hugecancel"] = big

	return out
}

// TestDifferentialVsExact64 checks every adversarial workload at every
// level count against the exact big-float sum, and that every
// accumulation kernel (Add, AddSlice, AddSliceVec, split+Merge) lands
// on identical bits.
func TestDifferentialVsExact64(t *testing.T) {
	for name, vals := range adversarial64() {
		t.Run(name, func(t *testing.T) {
			ex := exact.Sum(vals)
			exF, _ := ex.Float64()
			maxAbs := 0.0
			for _, v := range vals {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			for l := 1; l <= MaxLevels; l++ {
				s := NewState64(l)
				s.AddSliceVec(vals)
				got := s.Value()
				if err := exact.AbsError(got, ex); err > tol64(len(vals), l, maxAbs, math.Abs(exF)) {
					t.Errorf("L=%d: |%g − %g| = %g exceeds tolerance %g",
						l, got, exF, err, tol64(len(vals), l, maxAbs, math.Abs(exF)))
				}
				// Kernel consistency: scalar, slice, and split+Merge
				// paths must agree with the vector path bit for bit.
				sc := NewState64(l)
				for _, v := range vals {
					sc.Add(v)
				}
				sl := NewState64(l)
				sl.AddSlice(vals)
				left, right := NewState64(l), NewState64(l)
				left.AddSliceVec(vals[:len(vals)/3])
				right.AddSlice(vals[len(vals)/3:])
				left.Merge(&right)
				for kn, k := range map[string]*State64{"Add": &sc, "AddSlice": &sl, "split+Merge": &left} {
					if math.Float64bits(k.Value()) != math.Float64bits(got) {
						t.Errorf("L=%d: kernel %s disagrees with AddSliceVec", l, kn)
					}
				}
			}
		})
	}
}

// TestDifferentialVsExact32 runs the 32-bit path against the same
// classes of adversarial inputs (float32-representable), with errors
// measured in float64 against the big-float reference.
func TestDifferentialVsExact32(t *testing.T) {
	rng := workload.NewRNG(314159)
	cases := map[string][]float32{}

	canc := make([]float32, 0, 2001)
	for i := 0; i < 1000; i++ {
		x := float32(math.Ldexp(1+rng.Float64(), int(rng.Uint32n(21))))
		canc = append(canc, x, -x)
	}
	canc = append(canc, 0x1p-20)
	workload.Shuffle(7, canc)
	cases["cancellation"] = canc

	den := make([]float32, 2000)
	for i := range den {
		den[i] = float32(int64(rng.Uint32n(1<<12))-1<<11) * math.SmallestNonzeroFloat32
	}
	cases["denormal"] = den

	spread := make([]float32, 3000)
	for i := range spread {
		spread[i] = float32(math.Ldexp(1+rng.Float64(), int(rng.Uint32n(71))-35))
	}
	cases["spread2p35"] = spread

	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			wide := make([]float64, len(vals)) // every float32 widens exactly
			maxAbs := 0.0
			for i, v := range vals {
				wide[i] = float64(v)
				if a := math.Abs(wide[i]); a > maxAbs {
					maxAbs = a
				}
			}
			ex := exact.Sum(wide)
			exF, _ := ex.Float64()
			for l := 1; l <= MaxLevels; l++ {
				s := NewState32(l)
				s.AddSliceVec(vals)
				got := float64(s.Value())
				if err := exact.AbsError(got, ex); err > tol32(len(vals), l, maxAbs, math.Abs(exF)) {
					t.Errorf("L=%d: |%g − %g| = %g exceeds tolerance %g",
						l, got, exF, err, tol32(len(vals), l, maxAbs, math.Abs(exF)))
				}
				sc := NewState32(l)
				for _, v := range vals {
					sc.Add(v)
				}
				if math.Float32bits(sc.Value()) != math.Float32bits(s.Value()) {
					t.Errorf("L=%d: scalar and vector kernels disagree", l)
				}
			}
		})
	}
}

// TestDifferentialSpecials64 pins the deterministic semantics of
// NaN/±Inf mixes, which the big-float reference cannot model: any NaN
// input wins; +Inf and −Inf together are NaN; a single infinity
// dominates any finite values, and the answer is permutation-invariant.
func TestDifferentialSpecials64(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"nan-wins", []float64{1, nan, 2, inf}, nan},
		{"inf-clash", []float64{inf, -inf, 5}, nan},
		{"posinf", []float64{1e290, inf, -1e290, 3}, inf},
		{"neginf", []float64{-inf, 1e290, -1e290}, -inf},
		// Inputs beyond the supported exponent range (2^986) saturate
		// to signed infinity counters — deterministically, so a huge
		// positive and a huge negative value make NaN, not 0.
		{"saturating-huge", []float64{1.5e308, -1.5e308}, nan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for rot := 0; rot < len(tc.vals); rot++ {
				s := NewState64(2)
				for i := range tc.vals {
					s.Add(tc.vals[(i+rot)%len(tc.vals)])
				}
				got := s.Value()
				if math.IsNaN(tc.want) {
					if !math.IsNaN(got) {
						t.Fatalf("rot %d: got %v, want NaN", rot, got)
					}
				} else if math.Float64bits(got) != math.Float64bits(tc.want) {
					t.Fatalf("rot %d: got %v (%016x), want %v", rot, got, math.Float64bits(got), tc.want)
				}
			}
		})
	}
}
