// Package rsum implements reproducible floating-point summation after
// Demmel & Nguyen as presented in "Reproducible Floating-Point Aggregation
// in RDBMSs" (Müller et al., ICDE'18), Section III.
//
// A summation state consists of L levels; level l holds a running sum S(l)
// anchored at a fixed extractor constant 1.5·2^{e_l} and a carry-bit
// counter C(l) counting multiples of 0.25·2^{e_l} that have been spilled
// out of S(l). Level exponents live on a fixed global grid (multiples of
// W), so the decomposition of every input value into per-level
// contributions is a pure function of the value — independent of
// processing order, chunking, merge tree, and thread count. Consequently
// the finalized sum is bit-reproducible for any execution over the same
// multiset of inputs.
//
// Deviation from the paper's presentation (documented in DESIGN.md §2):
// the paper extracts against the running sum S(l) itself; under
// round-to-nearest-even the tie-break of that extraction depends on the
// parity of the accumulated sum and hence on processing order. Following
// Demmel & Nguyen's ReproBLAS we extract against the fixed extractor
// constant of the level instead, which makes the split deterministic at
// identical cost.
//
// Special values are handled reproducibly: NaNs and infinities are
// tracked in order-independent counters and resolved at finalization
// (NaN dominates; +Inf and −Inf together yield NaN). Inputs with
// magnitude above 2^986 (float64) / 2^119 (float32) are outside the
// supported extraction range and deterministically overflow to ±Inf.
package rsum

import (
	"math"

	"repro/internal/floatbits"
)

// MaxLevels is the largest supported number of summation levels. The
// paper evaluates L = 1..4; two extra levels are supported for
// experimentation with higher precision.
const MaxLevels = 6

// LowestLevelExp64 is the smallest level exponent at which the error-free
// transformation is still exact for float64 (the extractor must be a
// normal number). Levels below it are "dead": contributions that small
// are deterministically dropped.
const LowestLevelExp64 = -1000

// LowestLevelExp32 is the float32 analogue of LowestLevelExp64.
const LowestLevelExp32 = -126

// State64 is a reproducible summation state for float64 inputs
// (the repro<double,L> of the paper). The zero value is not usable;
// construct with NewState64 or call Reset.
//
// State64 is not safe for concurrent use; use one state per goroutine
// and Merge the results (merging is itself reproducible).
type State64 struct {
	s [MaxLevels]float64 // running sums, live levels only
	c [MaxLevels]int64   // carry counters (multiples of 0.25·ufp)

	eTop   int32 // exponent of level 1 extractor (multiple of W64)
	nAdds  int32 // extractions since the last carry propagation
	levels int8  // L
	init   bool  // true once the first finite non-zero value arrived

	nan    uint32 // number of NaN inputs seen
	posInf uint32 // number of +Inf (or positive-overflow) inputs seen
	negInf uint32 // number of −Inf (or negative-overflow) inputs seen
}

// NewState64 returns an empty summation state with the given number of
// levels (1 ≤ levels ≤ MaxLevels). Level counts outside the range panic:
// the level count is a static configuration choice, not data.
func NewState64(levels int) State64 {
	var s State64
	s.Reset(levels)
	return s
}

// Reset re-initializes the state to an empty sum with the given number
// of levels.
func (s *State64) Reset(levels int) {
	if levels < 1 || levels > MaxLevels {
		panic("rsum: level count out of range [1, MaxLevels]")
	}
	*s = State64{levels: int8(levels)}
}

// Levels returns the number of summation levels L.
func (s *State64) Levels() int { return int(s.levels) }

// IsEmpty reports whether the state has absorbed no finite non-zero
// values and no special values.
func (s *State64) IsEmpty() bool {
	return !s.init && s.nan == 0 && s.posInf == 0 && s.negInf == 0
}

// levelExp returns the extractor exponent of level l (0-based).
func (s *State64) levelExp(l int) int {
	return int(s.eTop) - l*floatbits.W64
}

// Add absorbs one value into the state.
func (s *State64) Add(b float64) {
	// Specials are tracked by counters; counting is order-independent.
	if b != b {
		s.nan++
		return
	}
	if b == 0 {
		return
	}
	eb := floatbits.Exponent64(b)
	if eb > floatbits.MaxInputExp64 { // includes ±Inf
		if b > 0 {
			s.posInf++
		} else {
			s.negInf++
		}
		return
	}
	if !s.init || eb >= int(s.eTop)-floatbits.MantBits64+floatbits.W64-1 {
		s.raise(eb)
	}
	s.extract(b)
	s.nAdds++
	if s.nAdds >= floatbits.NB64 {
		s.propagate()
	}
}

// raise makes the top level large enough to absorb a value with unbiased
// exponent eb, demoting existing levels as needed (Algorithm 2, lines
// 4–7). New level exponents stay on the fixed grid, so raising is
// order-independent: the final level set is determined by the maximum
// absolute input value alone.
func (s *State64) raise(eb int) {
	eNeed := floatbits.TopLevelExp64(eb)
	if !s.init {
		s.init = true
		s.eTop = int32(eNeed)
		for l := 0; l < int(s.levels); l++ {
			s.s[l] = s.freshLevel(l)
			s.c[l] = 0
		}
		return
	}
	if eNeed <= int(s.eTop) {
		return
	}
	shift := (eNeed - int(s.eTop)) / floatbits.W64
	s.eTop = int32(eNeed)
	L := int(s.levels)
	for l := L - 1; l >= 0; l-- {
		if l >= shift {
			s.s[l] = s.s[l-shift]
			s.c[l] = s.c[l-shift]
		} else {
			s.s[l] = s.freshLevel(l)
			s.c[l] = 0
		}
	}
}

// freshLevel returns the initial running sum of level l: the extractor
// constant 1.5·2^{e_l}, or 0 for dead levels below the representable
// range.
func (s *State64) freshLevel(l int) float64 {
	e := s.levelExp(l)
	if e < LowestLevelExp64 {
		return 0
	}
	return floatbits.Extractor64(e)
}

// extract splits b across the levels (Algorithm 2, lines 8–13).
// The caller guarantees the top level can absorb b.
func (s *State64) extract(b float64) {
	r := b
	for l := 0; l < int(s.levels); l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp64 {
			return // dead level: remainder dropped deterministically
		}
		ext := floatbits.Extractor64(e)
		q := (r + ext) - ext // deterministic: fixed-parity extractor
		s.s[l] += q          // exact: same binade, multiple of ulp
		r -= q               // exact remainder
		// No early exit on r == 0: the kernel is deliberately
		// branch-free over levels so the cost scales with L as in the
		// paper (≈ 12 FP ops per level, Section IV).
	}
}

// propagate performs carry-bit propagation on every level (Algorithm 2,
// lines 14–18): the running sum is renormalized into
// [1.5·ufp, 1.75·ufp) and whole multiples of 0.25·ufp move into the
// carry counter. All operations are exact.
func (s *State64) propagate() {
	for l := 0; l < int(s.levels); l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp64 {
			break
		}
		ufp := floatbits.Pow2_64(e)
		quarter := 0.25 * ufp
		delta := s.s[l] - 1.5*ufp // exact (Sterbenz)
		d := math.Floor(delta / quarter)
		if d != 0 {
			s.s[l] -= d * quarter // exact
			s.c[l] += int64(d)
		}
	}
	s.nAdds = 0
}

// Merge absorbs the other state into s. Both states must have the same
// number of levels. Merging is associative and commutative at the bit
// level, so parallel reductions over any merge tree yield identical
// results.
func (s *State64) Merge(o *State64) {
	if s.levels != o.levels {
		panic("rsum: merging states with different level counts")
	}
	s.nan += o.nan
	s.posInf += o.posInf
	s.negInf += o.negInf
	if !o.init {
		return
	}
	if !s.init {
		// Copy the numeric part of o; special counters were combined above.
		s.s, s.c, s.eTop, s.nAdds, s.init = o.s, o.c, o.eTop, o.nAdds, o.init
		return
	}
	// Align level grids: raise self to the union's top level.
	if o.eTop > s.eTop {
		// Raise using the exponent of a hypothetical value that would
		// demand o's top level.
		s.raiseTo(int(o.eTop))
	}
	s.propagate() // make room: S ∈ [1.5, 1.75)·ufp before adding nets
	shift := (int(s.eTop) - int(o.eTop)) / floatbits.W64
	for lo := 0; lo < int(o.levels); lo++ {
		l := lo + shift
		if l >= int(s.levels) {
			break // below the union's top-L levels: dropped (same set for any merge order)
		}
		e := s.levelExp(l)
		if e < LowestLevelExp64 {
			break
		}
		ufp := floatbits.Pow2_64(e)
		if o.s[lo] == 0 {
			continue // dead level in o
		}
		quarter := 0.25 * ufp
		net := o.s[lo] - 1.5*ufp // exact net value of o's level, ∈ [−0.25, 0.5)·ufp
		if net >= quarter {
			// Spill a whole quarter into the carry counter first so the
			// following addition stays strictly below 2·ufp and therefore
			// exact (multiples of ulp are representable only up to 2·ufp).
			net -= quarter // exact
			s.c[l]++
		}
		s.s[l] += net // exact: S ∈ [1.5,1.75)·ufp, |net| < 0.25·ufp ⇒ sum ∈ [1.25, 2)·ufp
		s.c[l] += o.c[lo]
		// Renormalize so the invariant holds for subsequent Adds.
		delta := s.s[l] - 1.5*ufp
		d := math.Floor(delta / quarter)
		if d != 0 {
			s.s[l] -= d * quarter
			s.c[l] += int64(d)
		}
	}
	s.nAdds = 0
}

// raiseTo raises the top level to exactly the grid exponent e
// (a multiple of W64, ≥ current top).
func (s *State64) raiseTo(e int) {
	if e <= int(s.eTop) {
		return
	}
	shift := (e - int(s.eTop)) / floatbits.W64
	s.eTop = int32(e)
	L := int(s.levels)
	for l := L - 1; l >= 0; l-- {
		if l >= shift {
			s.s[l] = s.s[l-shift]
			s.c[l] = s.c[l-shift]
		} else {
			s.s[l] = s.freshLevel(l)
			s.c[l] = 0
		}
	}
}

// Value finalizes the state and returns the reproducible sum (Eq. 1).
// The state is not modified; Value may be called repeatedly and
// interleaved with further Adds.
func (s *State64) Value() float64 {
	if s.nan > 0 || (s.posInf > 0 && s.negInf > 0) {
		return math.NaN()
	}
	if s.posInf > 0 {
		return math.Inf(1)
	}
	if s.negInf > 0 {
		return math.Inf(-1)
	}
	if !s.init {
		return 0
	}
	t := *s
	t.propagate()
	// Fixed evaluation order, last (smallest) level first, per the paper.
	q := 0.0
	for l := int(t.levels) - 1; l >= 0; l-- {
		e := t.levelExp(l)
		if e < LowestLevelExp64 {
			continue
		}
		ufp := floatbits.Pow2_64(e)
		term := (t.s[l] - 1.5*ufp) + 0.25*ufp*float64(t.c[l])
		q += term
	}
	return q
}

// Equal reports whether two states are bit-identical after
// normalization (carry propagation). It is primarily a test helper and
// a stronger property than equal Value().
func (s *State64) Equal(o *State64) bool {
	if s.levels != o.levels || s.nan != o.nan ||
		s.posInf != o.posInf || s.negInf != o.negInf || s.init != o.init {
		return false
	}
	if !s.init {
		return true
	}
	a, b := *s, *o
	a.propagate()
	b.propagate()
	if a.eTop != b.eTop {
		return false
	}
	for l := 0; l < int(a.levels); l++ {
		if math.Float64bits(a.s[l]) != math.Float64bits(b.s[l]) || a.c[l] != b.c[l] {
			return false
		}
	}
	return true
}

// AddSlice absorbs a slice of values. It applies the tiling optimization
// of Algorithm 3: the chunk maximum is checked once so the per-value
// level check disappears from the inner loop, and carry bits are
// propagated once per NB values.
func (s *State64) AddSlice(bs []float64) {
	for len(bs) > 0 {
		n := len(bs)
		if n > floatbits.NB64 {
			n = floatbits.NB64
		}
		chunk := bs[:n]
		bs = bs[n:]

		maxExp, ok := chunkMaxExp64(chunk)
		if !ok {
			// Chunk contains specials or out-of-range values: slow path.
			for _, b := range chunk {
				s.Add(b)
			}
			continue
		}
		if maxExp == minInt {
			continue // all zeros
		}
		if !s.init || maxExp >= int(s.eTop)-floatbits.MantBits64+floatbits.W64-1 {
			s.raise(maxExp)
		}
		if s.nAdds+int32(n) > floatbits.NB64 {
			s.propagate()
		}
		for _, b := range chunk {
			if b == 0 {
				continue
			}
			s.extract(b)
		}
		s.nAdds += int32(n)
	}
}

const minInt = -1 << 31

// chunkMaxExp64 scans a chunk and returns the maximum unbiased exponent
// of its finite non-zero values (minInt if all zero). ok is false if the
// chunk contains NaN, Inf, or values beyond the supported input range.
func chunkMaxExp64(chunk []float64) (maxExp int, ok bool) {
	m := 0.0
	for _, b := range chunk {
		a := math.Abs(b)
		if a > m {
			m = a
		}
		if b != b { // NaN never wins the max comparison; check explicitly
			return 0, false
		}
	}
	if m >= 0x1p987 { // too large to extract, or Inf
		return 0, false
	}
	if m == 0 {
		return minInt, true
	}
	return floatbits.Exponent64(m), true
}

// AddEager absorbs one value with per-element carry-bit propagation —
// Algorithm 2 exactly as written in the paper, where lines 14–18 run for
// every input value (≈ 12 FP ops per level). This is the cost model of
// the drop-in repro<ScalarT,L> data type of Section IV; the batched
// kernels (AddSlice, AddSliceVec) amortize the propagation over NB
// values instead (the tiling of Algorithm 3).
//
// AddEager and Add produce bit-identical normalized states: carry
// propagation only moves whole multiples of 0.25·ufp between S(l) and
// C(l) and every operation involved is exact.
func (s *State64) AddEager(b float64) {
	if b != b {
		s.nan++
		return
	}
	if b == 0 {
		return
	}
	eb := floatbits.Exponent64(b)
	if eb > floatbits.MaxInputExp64 {
		if b > 0 {
			s.posInf++
		} else {
			s.negInf++
		}
		return
	}
	if !s.init || eb >= int(s.eTop)-floatbits.MantBits64+floatbits.W64-1 {
		s.raise(eb)
	}
	// Fused extraction + carry propagation per level.
	r := b
	for l := 0; l < int(s.levels); l++ {
		e := s.levelExp(l)
		if e < LowestLevelExp64 {
			return
		}
		ext := floatbits.Extractor64(e)
		q := (r + ext) - ext
		sum := s.s[l] + q
		r -= q
		ufp := floatbits.Pow2_64(e)
		quarter := 0.25 * ufp
		delta := sum - 1.5*ufp
		if d := math.Floor(delta / quarter); d != 0 {
			sum -= d * quarter
			s.c[l] += int64(d)
		}
		s.s[l] = sum
	}
}
