// Example: a real multi-process cluster. WithProcessCluster spawns one
// worker OS process per cluster node — each speaking the v2 frame
// codec over TCP sockets to its peers, joined through a handshake that
// rejects version/levels/config mismatches — and the result is
// bit-identical to the single-machine sum and to every in-process
// transport. The only ceremony: main must call repro.InitWorkerProcess
// first, so the re-executed binary can become a worker.
package main

import (
	"fmt"
	"math"
	"os"

	"repro"
)

func main() {
	repro.InitWorkerProcess() // becomes a cluster worker when spawned as one

	const rows = 200000
	vals := make([]float64, rows)
	for i := range vals {
		// An adversarial mix of magnitudes: exactly what makes naive
		// parallel summation order-dependent.
		vals[i] = math.Pow(-1, float64(i%2)) * math.Pow(2, float64(i%120-60))
	}
	ref := repro.Sum(vals)

	// Deal the rows across 3 shards and run them on 3 separate worker
	// processes.
	shards := make([][]float64, 3)
	for i, v := range vals {
		shards[i%3] = append(shards[i%3], v)
	}
	sum, err := repro.DistributedSum(shards, 2, repro.Binomial, repro.WithProcessCluster(3))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster sum:", err)
		os.Exit(1)
	}

	fmt.Printf("single-machine : %016x (%g)\n", math.Float64bits(ref), ref)
	fmt.Printf("3-process      : %016x (%g)\n", math.Float64bits(sum), sum)
	if math.Float64bits(sum) != math.Float64bits(ref) {
		fmt.Fprintln(os.Stderr, "BUG: cross-process run broke bit-reproducibility")
		os.Exit(1)
	}
	fmt.Println("bit-identical across process boundaries ✓")

	// The same across a GROUP BY shuffle, forced into multi-chunk
	// streams so chunks genuinely cross sockets out of order.
	keys := make([]uint32, rows)
	for i := range keys {
		keys[i] = uint32(i % 1024)
	}
	want := repro.GroupBySum(keys, vals, nil)
	sk := [][]uint32{keys[:rows/2], keys[rows/2:]}
	sv := [][]float64{vals[:rows/2], vals[rows/2:]}
	groups, err := repro.DistributedGroupBySum(sk, sv, 2,
		repro.WithProcessCluster(2), repro.WithMaxChunkPayload(4096))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster group by:", err)
		os.Exit(1)
	}
	for i := range groups {
		if groups[i].Key != want[i].Key || math.Float64bits(groups[i].Sum) != math.Float64bits(want[i].Sum) {
			fmt.Fprintln(os.Stderr, "BUG: cross-process GROUP BY broke bit-reproducibility")
			os.Exit(1)
		}
	}
	fmt.Printf("%d groups, all bit-identical across process boundaries ✓\n", len(groups))
}
