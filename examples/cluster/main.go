// Example: a real multi-process cluster. WithProcessCluster spawns one
// worker OS process per cluster node — each speaking the v2 frame
// codec over TCP sockets to its peers, joined through a handshake that
// rejects version/levels/config mismatches — and the result is
// bit-identical to the single-machine sum and to every in-process
// transport. The only ceremony: main must call repro.InitWorkerProcess
// first, so the re-executed binary can become a worker.
//
// The second half runs the long-lived Cluster/Job API: a standby
// worker heals a forced mid-run death without changing a bit, and a
// follow-up job ships a generator spec instead of rows.
package main

import (
	"fmt"
	"math"
	"os"

	"repro"
)

func main() {
	repro.InitWorkerProcess() // becomes a cluster worker when spawned as one

	const rows = 200000
	vals := make([]float64, rows)
	for i := range vals {
		// An adversarial mix of magnitudes: exactly what makes naive
		// parallel summation order-dependent.
		vals[i] = math.Pow(-1, float64(i%2)) * math.Pow(2, float64(i%120-60))
	}
	ref := repro.Sum(vals)

	// Deal the rows across 3 shards and run them on 3 separate worker
	// processes.
	shards := make([][]float64, 3)
	for i, v := range vals {
		shards[i%3] = append(shards[i%3], v)
	}
	sum, err := repro.DistributedSum(shards, 2, repro.Binomial, repro.WithProcessCluster(3))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster sum:", err)
		os.Exit(1)
	}

	fmt.Printf("single-machine : %016x (%g)\n", math.Float64bits(ref), ref)
	fmt.Printf("3-process      : %016x (%g)\n", math.Float64bits(sum), sum)
	if math.Float64bits(sum) != math.Float64bits(ref) {
		fmt.Fprintln(os.Stderr, "BUG: cross-process run broke bit-reproducibility")
		os.Exit(1)
	}
	fmt.Println("bit-identical across process boundaries ✓")

	// The same across a GROUP BY shuffle, forced into multi-chunk
	// streams so chunks genuinely cross sockets out of order.
	keys := make([]uint32, rows)
	for i := range keys {
		keys[i] = uint32(i % 1024)
	}
	want := repro.GroupBySum(keys, vals, nil)
	sk := [][]uint32{keys[:rows/2], keys[rows/2:]}
	sv := [][]float64{vals[:rows/2], vals[rows/2:]}
	groups, err := repro.DistributedGroupBySum(sk, sv, 2,
		repro.WithProcessCluster(2), repro.WithMaxChunkPayload(4096))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster group by:", err)
		os.Exit(1)
	}
	for i := range groups {
		if groups[i].Key != want[i].Key || math.Float64bits(groups[i].Sum) != math.Float64bits(want[i].Sum) {
			fmt.Fprintln(os.Stderr, "BUG: cross-process GROUP BY broke bit-reproducibility")
			os.Exit(1)
		}
	}
	fmt.Printf("%d groups, all bit-identical across process boundaries ✓\n", len(groups))

	// The long-lived Cluster API: the same workers stay up across jobs,
	// a standby is kept warm, and a forced worker death mid-run is
	// healed by promotion + job re-ship — without disturbing the bits.
	c, err := repro.NewCluster(repro.ClusterSpec{
		Nodes:        3,
		SpawnStandby: 1,
		ReplaceDead:  true,
		DieNode:      1, // node 1 kills itself before its first data frame (first life only)
		DieAfter:     1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
	defer c.Close()

	res, err := c.Run(repro.Job{Topo: repro.Binomial, Workers: 2,
		Source: repro.ValueShards(shards)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster job 1:", err)
		os.Exit(1)
	}
	if math.Float64bits(res.Sum) != math.Float64bits(ref) {
		fmt.Fprintln(os.Stderr, "BUG: worker replacement changed the sum bits")
		os.Exit(1)
	}
	fmt.Printf("elastic sum    : %016x, %d worker(s) replaced mid-run ✓\n",
		math.Float64bits(res.Sum), res.Replacements)

	// Job 2 on the healed cluster ships no rows at all: a declarative
	// source the workers materialize locally — O(1) dispatch.
	res, err = c.Run(repro.Job{Workers: 2,
		Specs: []repro.AggSpec{{Kind: repro.AggSum, Col: 0}, {Kind: repro.AggCount}},
		Source: repro.SyntheticSource(repro.SyntheticSpec{Rows: rows, Groups: 1024, KeySeed: 7,
			Cols: []repro.SyntheticColumn{{Seed: 11, Dist: repro.MixedMag}}})})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster job 2:", err)
		os.Exit(1)
	}
	fmt.Printf("spec-ingest    : %d groups from a shipped generator spec ✓\n", len(res.Groups))
}
