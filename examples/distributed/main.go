// Distributed: reproducible aggregation across a simulated cluster —
// the MIMD setting the summation algorithm was designed for (paper
// §III-D: local summation per process, global MPI_Reduce). Partial
// aggregates travel between "nodes" as serialized canonical states, and
// the final answer is bit-identical for every cluster size, reduction
// topology, and (nondeterministic) message arrival order — and, since
// the message layer is a pluggable transport, for in-process channels
// and real TCP sockets alike, even with faults (delay, duplication,
// reordering, dropped-then-retried frames) injected into the link.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dist"
	"repro/internal/workload"
)

func main() {
	const n = 200000
	vals := workload.Values64(7, n, workload.MixedMag)

	fmt.Printf("global SUM of %d mixed-magnitude values across simulated clusters:\n\n", n)
	fmt.Println("nodes  topology  result (hex bits)          result")
	var ref uint64
	haveRef := false
	for _, nodes := range []int{1, 4, 16, 61} {
		shards := make([][]float64, nodes)
		for i, v := range vals {
			shards[i%nodes] = append(shards[i%nodes], v)
		}
		for _, topo := range []dist.Topology{dist.Binomial, dist.Chain, dist.Star} {
			sum, err := dist.Reduce(shards, 2, topo)
			if err != nil {
				panic(err)
			}
			bits := math.Float64bits(sum)
			mark := ""
			if !haveRef {
				ref, haveRef = bits, true
			} else if bits != ref {
				mark = "  <-- MISMATCH"
			}
			fmt.Printf("%5d  %-8s  %016x  %.17g%s\n", nodes, topo, bits, sum, mark)
		}
	}
	fmt.Println("\nEvery row above carries the same bits: the reduction is reproducible")
	fmt.Println("for any cluster size and any tree shape.")

	// Same reduction over real TCP sockets on loopback — one listener
	// per node, length-prefixed CRC-checked frames — with a hostile
	// fault plan injected into the link. The bits still cannot move.
	fmt.Printf("\nsame SUM over real transports (7 nodes, binomial tree):\n\n")
	fmt.Println("transport            result (hex bits)          matches chan?")
	shards7 := make([][]float64, 7)
	for i, v := range vals {
		shards7[i%7] = append(shards7[i%7], v)
	}
	chaos := &dist.FaultPlan{
		Seed: 42, DropProb: 0.3, DupProb: 0.3, Reorder: true,
		MaxDelay: 500 * time.Microsecond, RetryDelay: 200 * time.Microsecond,
	}
	configs := []struct {
		name string
		cfg  dist.Config
	}{
		{"chan", dist.Config{}},
		{"chan+faults", dist.Config{Faults: chaos, ChildDeadline: 5 * time.Millisecond}},
		{"tcp", dist.Config{NewTransport: dist.TCPTransportFactory}},
		{"tcp+faults", dist.Config{NewTransport: dist.TCPTransportFactory,
			Faults: chaos, ChildDeadline: 5 * time.Millisecond}},
	}
	for _, c := range configs {
		sum, err := dist.ReduceConfig(shards7, 2, dist.Binomial, c.cfg)
		if err != nil {
			panic(err)
		}
		bits := math.Float64bits(sum)
		mark := ""
		if bits != ref {
			mark = "  <-- MISMATCH"
		}
		fmt.Printf("%-20s %016x           %v%s\n", c.name, bits, bits == ref, mark)
	}

	// Distributed GROUP BY with hash shuffle.
	keys := workload.Keys(8, n, 1000)
	fmt.Printf("\ndistributed GROUP BY SUM (%d rows, 1000 groups):\n", n)
	var refSum float64
	haveRefSum := false
	for _, nodes := range []int{2, 7} {
		lk := make([][]uint32, nodes)
		lv := make([][]float64, nodes)
		for i := range keys {
			d := i % nodes
			lk[d] = append(lk[d], keys[i])
			lv[d] = append(lv[d], vals[i])
		}
		out, err := dist.AggregateByKey(lk, lv, 2)
		if err != nil {
			panic(err)
		}
		for _, g := range out {
			if g.Key == 0 {
				if !haveRefSum {
					refSum, haveRefSum = g.Sum, true
				}
				fmt.Printf("  %d nodes: group 0 = %.17g (bits equal across cluster sizes: %v)\n",
					nodes, g.Sum, math.Float64bits(g.Sum) == math.Float64bits(refSum))
			}
		}
	}
}
