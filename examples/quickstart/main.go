// Quickstart: the paper's Algorithm 1 — the same SQL-style SUM over the
// same three rows returns different results after the storage layer
// physically reorders them, unless the sum is reproducible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("The paper's Algorithm 1, as data:")
	fmt.Println(`  CREATE TABLE R (i int, f float);`)
	fmt.Println(`  rows: (1, 2.5e-16), (2, 0.999999999999999), (3, 2.5e-16)`)
	fmt.Println()

	// Physical order before the UPDATE.
	before := []float64{2.5e-16, 0.999999999999999, 2.5e-16}
	// After "UPDATE R SET i = i + 1 WHERE i = 2", PostgreSQL rewrites the
	// updated row at the end of the heap file; the scan order changes.
	after := []float64{2.5e-16, 2.5e-16, 0.999999999999999}

	naive := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}

	fmt.Println("Conventional float64 SUM:")
	fmt.Printf("  before UPDATE: %.17g\n", naive(before))
	fmt.Printf("  after  UPDATE: %.17g   <-- same rows, different result!\n", naive(after))
	fmt.Println()

	fmt.Println("repro.Sum (reproducible, L=2):")
	fmt.Printf("  before UPDATE: %.17g\n", repro.Sum(before))
	fmt.Printf("  after  UPDATE: %.17g   <-- identical in every bit\n", repro.Sum(after))
	fmt.Println()

	// The accumulator API: partial sums can be merged in any tree shape.
	a := repro.NewAccumulator(repro.DefaultLevels)
	a.Add(2.5e-16)
	b := repro.NewAccumulator(repro.DefaultLevels)
	b.Add(0.999999999999999)
	b.Add(2.5e-16)
	a.MergeFrom(&b)
	fmt.Printf("Merged partial accumulators: %.17g (same bits again)\n", a.Value())

	// GROUPBY with a HAVING-style threshold: the paper's warning is that
	// tiny rounding differences flip predicates like SUM(f) >= 1.
	keys := []uint32{7, 7, 7}
	for name, vals := range map[string][]float64{"before": before, "after": after} {
		g := repro.GroupBySum(keys, vals, nil)
		fmt.Printf("GROUP BY (%s): key=%d sum=%.17g  HAVING sum>=1 is %v\n",
			name, g[0].Key, g[0].Sum, g[0].Sum >= 1)
	}
}
