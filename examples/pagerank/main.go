// PageRank: the motivation experiment from the paper's introduction.
// Running PageRank on permutations of a web graph changes enough page
// ranks that pages swap positions from run to run; with reproducible
// per-page summation the ranking is bit-stable.
//
//	go run ./examples/pagerank [-nodes 50000] [-perms 5]
package main

import (
	"flag"
	"fmt"

	"repro/internal/pagerank"
)

func main() {
	nodes := flag.Int("nodes", 50000, "number of pages in the synthetic web graph")
	perms := flag.Int("perms", 5, "number of edge-list permutations to test")
	iters := flag.Int("iters", 20, "PageRank iterations")
	flag.Parse()

	fmt.Printf("generating scale-free web graph: %d pages...\n", *nodes)
	g := pagerank.NewScaleFree(*nodes, 4, 1)
	fmt.Printf("%d edges\n\n", g.NumEdges())

	baseF := pagerank.Run(g, pagerank.Config{Iterations: *iters})
	baseR := pagerank.Run(g, pagerank.Config{Iterations: *iters, Reproducible: true})
	orderF := pagerank.RankOrder(baseF)
	orderR := pagerank.RankOrder(baseR)

	fmt.Println("perm | float64: pages at a different rank | reproducible: pages moved | bit-identical")
	totalF := 0
	for p := 0; p < *perms; p++ {
		pg := g.Permute(uint64(100 + p))
		rf := pagerank.Run(pg, pagerank.Config{Iterations: *iters})
		rr := pagerank.Run(pg, pagerank.Config{Iterations: *iters, Reproducible: true})
		cf := pagerank.CountOrderChanges(orderF, pagerank.RankOrder(rf))
		cr := pagerank.CountOrderChanges(orderR, pagerank.RankOrder(rr))
		totalF += cf
		fmt.Printf("%4d | %36d | %25d | %v\n", p+1, cf, cr, pagerank.BitsEqual(baseR, rr))
	}
	fmt.Printf("\nfloat64 PageRank moved %d rank positions across %d permutations;\n", totalF, *perms)
	fmt.Println("reproducible PageRank moved 0 and every rank vector was bit-identical.")
	fmt.Println("(The paper observed 10–20 swapped pages per run on a 900k-page graph.)")
}
