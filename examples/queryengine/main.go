// Queryengine: TPC-H Query 1 end to end on the built-in column-store
// engine, comparing the four SUM kernels of the paper's Table IV
// (built-in doubles, repro<double,4> with and without summation
// buffers, and sorted input) — both results and per-operator CPU time.
//
//	go run ./examples/queryengine [-sf 0.01]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("generating lineitem at SF=%.3f...\n", *sf)
	tbl := tpch.GenLineitem(*sf, 42)
	fmt.Printf("%d rows\n\n", tbl.NumRows())

	fmt.Println("SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),")
	fmt.Println("       sum(disc_price), sum(charge), avg(...), count(*)")
	fmt.Println("FROM lineitem WHERE l_shipdate <= date '1998-09-02'")
	fmt.Println("GROUP BY l_returnflag, l_linestatus;")

	kernels := []engine.GroupByConfig{
		{Kind: engine.SumPlain},
		{Kind: engine.SumRepro, Levels: 4},
		{Kind: engine.SumReproBuffered, Levels: 4},
		{Kind: engine.SumSorted},
	}
	var baseline time.Duration
	for _, k := range kernels {
		rows, prof, err := tpch.RunQ1(tbl, k)
		if err != nil {
			panic(err)
		}
		total := prof.Total()
		if k.Kind == engine.SumPlain {
			baseline = total
		}
		fmt.Printf("\n--- SUM kernel: %-13s  total %8.2fms (%.1f%% of doubles; aggregation %.2fms)\n",
			k.Kind, float64(total.Microseconds())/1000,
			100*float64(total)/float64(baseline),
			float64(prof.Get("aggregation").Microseconds())/1000)
		for _, g := range rows {
			fmt.Println("  " + tpch.FormatQ1(g))
		}
	}
	fmt.Println("\nNote: the repro kernels return bit-identical sums for ANY physical row")
	fmt.Println("order; the double kernel does not (see examples/quickstart).")
}
