// Sensors: a scientific-data scenario the paper's introduction motivates
// — measurements spanning many orders of magnitude, aggregated per
// sensor, where fixed-point DECIMAL types cannot be used and float
// aggregation is not reproducible.
//
// A fleet of sensors reports readings of wildly mixed magnitude
// (radiation counts, trace-gas concentrations). The pipeline ingests
// them in whatever order the network delivers; nightly compaction
// reorders storage. This example shows per-sensor rollups that are
// bit-identical regardless of arrival order and worker count, computed
// in parallel with merged partial states — including serialization of
// partial aggregates as a distributed system would ship them.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"math"
	"sync"

	"repro"
	"repro/internal/workload"
)

const (
	numSensors  = 64
	numReadings = 200000
)

func makeReadings(seed uint64) (sensors []uint32, values []float64) {
	r := workload.NewRNG(seed)
	sensors = make([]uint32, numReadings)
	values = make([]float64, numReadings)
	for i := range sensors {
		sensors[i] = r.Uint32n(numSensors)
		// Mixed magnitudes: 1e-9 … 1e+6, signed (drift corrections).
		mag := math.Pow(10, float64(r.Intn(16))-9)
		values[i] = (r.Float64()*2 - 1) * mag
	}
	return sensors, values
}

func main() {
	sensors, values := makeReadings(2024)

	// Run 1: arrival order.
	run1 := repro.GroupBySum(sensors, values, &repro.GroupByOptions{Groups: numSensors})

	// Run 2: nightly compaction reordered the log; also use a different
	// number of ingest workers.
	s2 := append([]uint32(nil), sensors...)
	v2 := append([]float64(nil), values...)
	workload.ShufflePairs(7, s2, v2)
	run2 := repro.GroupBySum(s2, v2, &repro.GroupByOptions{Groups: numSensors, Workers: 4})

	identical := 0
	for i := range run1 {
		if math.Float64bits(run1[i].Sum) == math.Float64bits(run2[i].Sum) {
			identical++
		}
	}
	fmt.Printf("per-sensor rollups identical across reorder + worker change: %d/%d\n",
		identical, len(run1))

	// Contrast: plain float64 rollups on the same two orders.
	plain := func(ks []uint32, vs []float64) []float64 {
		out := make([]float64, numSensors)
		for i, k := range ks {
			out[k] += vs[i]
		}
		return out
	}
	p1, p2 := plain(sensors, values), plain(s2, v2)
	drifted := 0
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p2[i]) {
			drifted++
		}
	}
	fmt.Printf("plain float64 rollups that drifted after reorder:    %d/%d\n",
		drifted, numSensors)

	// Distributed ingest: three sites accumulate locally, serialize their
	// partial states, and headquarters merges them — in any order.
	sites := make([][]byte, 3)
	var wg sync.WaitGroup
	for site := 0; site < 3; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			acc := repro.NewAccumulator(repro.DefaultLevels)
			for i := site; i < numReadings; i += 3 {
				if sensors[i] == 0 { // this example tracks sensor 0 end to end
					acc.Add(values[i])
				}
			}
			data, err := acc.State().MarshalBinary()
			if err != nil {
				panic(err)
			}
			sites[site] = data
		}(site)
	}
	wg.Wait()

	mergeOrder := func(order []int) float64 {
		total := repro.NewAccumulator(repro.DefaultLevels)
		for _, si := range order {
			var st repro.State
			if err := st.UnmarshalBinary(sites[si]); err != nil {
				panic(err)
			}
			partial := repro.NewAccumulator(repro.DefaultLevels)
			partial.State().Merge(&st)
			total.MergeFrom(&partial)
		}
		return total.Value()
	}
	a := mergeOrder([]int{0, 1, 2})
	b := mergeOrder([]int{2, 0, 1})
	fmt.Printf("sensor 0 via serialized site merges, two orders: %.17g vs %.17g (equal: %v)\n",
		a, b, math.Float64bits(a) == math.Float64bits(b))
	fmt.Printf("sensor 0 via direct GROUP BY:                    %.17g (equal: %v)\n",
		run1[0].Sum, math.Float64bits(a) == math.Float64bits(run1[0].Sum))
}
