// Serving: the reproducible SQL serving layer — a long-lived query
// server over shared resident data, where bit-reproducibility makes a
// result cache correct by construction and makes the local and
// distributed backends interchangeable byte for byte. The example also
// shows the admission side: a query whose estimated memory exceeds the
// per-query budget is rejected with a typed error before any work
// happens.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"log"

	"repro"
)

func digest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func main() {
	// Resident data: 1M rows, 4096 groups, two value columns.
	ds, err := repro.NewSyntheticServeDataset(42, 1<<20, 4096, 2, repro.ServeDatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resident: %d rows × %d cols, version %016x, ≤%d distinct keys\n\n",
		ds.Rows(), ds.Cols(), ds.Version(), ds.DistinctBound())

	query := repro.GroupByQuery(
		repro.AggSpec{Kind: repro.AggSum, Col: 0},
		repro.AggSpec{Kind: repro.AggAvg, Col: 1},
		repro.AggSpec{Kind: repro.AggCount},
	)

	// The same query on two servers — local engine vs distributed
	// cluster — and on cold vs warm caches. Four answers, one digest.
	local, err := repro.NewServer(ds, repro.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()
	cluster, err := repro.NewServer(ds, repro.ServerOptions{Distributed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("backend   cache  result digest")
	var ref []byte
	for _, srv := range []struct {
		name string
		s    *repro.Server
	}{{"local", local}, {"cluster", cluster}} {
		for i := 0; i < 2; i++ {
			r, err := srv.s.Do(query)
			if err != nil {
				log.Fatal(err)
			}
			temp := "cold"
			if r.CacheHit {
				temp = "warm"
			}
			fmt.Printf("%-9s %-6s %016x\n", srv.name, temp, digest(r.Bytes))
			if ref == nil {
				ref = r.Bytes
			} else if !bytes.Equal(ref, r.Bytes) {
				log.Fatal("result bytes diverged — reproducibility broken")
			}
		}
	}
	fmt.Println("\nall four answers byte-identical: the cache and the backend are unobservable")

	// Admission: a tiny budget rejects the query before execution.
	stingy, err := repro.NewServer(ds, repro.ServerOptions{MemoryBudget: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer stingy.Close()
	if _, err := stingy.Do(query); errors.Is(err, repro.ErrOverBudget) {
		fmt.Printf("\n1 KiB budget: %v\n", err)
	} else {
		log.Fatalf("expected ErrOverBudget, got %v", err)
	}

	st := local.Stats()
	fmt.Printf("\nlocal server stats: served=%d hits=%d misses=%d peak_inflight=%d\n",
		st.Served, st.CacheHits, st.CacheMisses, st.PeakInflight)
}
